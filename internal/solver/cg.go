package solver

import "math"

// solveCG solves A·x = rhs with conjugate gradients, where
// A = (1+4r)·I − r·S and S is the interior 4-neighbour stencil. The system
// is symmetric positive definite for any r > 0. x is warm-started from the
// previous field u, which typically converges within a handful of
// iterations for diffusion-sized time steps.
//
// The matrix-vector products run on the partitioned engine (halo exchange
// between strip workers); the scalar recurrences and vector updates are
// performed by this coordinator, so results are bit-identical regardless of
// the worker count.
func (s *Simulation) solveCG() error {
	x := s.u
	// res = rhs − A·x
	s.eng.apply(s.ap, x)
	for i := range s.res {
		s.res[i] = s.rhs[i] - s.ap[i]
	}
	copy(s.p, s.res)

	rr := dot64(s.res, s.res)
	bNorm := math.Sqrt(dot64(s.rhs, s.rhs))
	if bNorm == 0 {
		bNorm = 1
	}
	tol := s.cfg.CGTol * bNorm

	for iter := 0; iter < s.cfg.CGMaxIter; iter++ {
		if math.Sqrt(rr) <= tol {
			return nil
		}
		s.eng.apply(s.ap, s.p)
		pap := dot64(s.p, s.ap)
		if pap <= 0 {
			// Defensive: cannot happen for an SPD operator unless the
			// residual is at rounding level.
			return nil
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * s.p[i]
			s.res[i] -= alpha * s.ap[i]
		}
		rrNew := dot64(s.res, s.res)
		beta := rrNew / rr
		rr = rrNew
		for i := range s.p {
			s.p[i] = s.res[i] + beta*s.p[i]
		}
	}
	if math.Sqrt(rr) <= tol {
		return nil
	}
	return ErrNoConvergence
}

func dot64(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
