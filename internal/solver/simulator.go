package solver

import "fmt"

// Simulator is the interface every ensemble-member solver implements: a
// stepwise time integrator over a flattened field. The heat-equation
// Simulation is the reference implementation; GrayScott demonstrates a
// qualitatively different PDE behind the same contract. The client library,
// launcher, and training pipeline drive simulations exclusively through
// this interface, which is what makes the framework problem-agnostic.
type Simulator interface {
	// StepOnce advances the field by one time step.
	StepOnce() error
	// StepIndex returns the number of completed time steps.
	StepIndex() int
	// Field returns the current flattened field. The slice may alias
	// internal state; callers must copy before the next step if they
	// retain it.
	Field() []float64
	// Restore resets the simulator to a checkpointed state: the field
	// after the given completed step.
	Restore(step int, field []float64) error
}

// Run drives sim through the remaining steps up to totalSteps, invoking
// emit after each one with the 1-based step index and the current field —
// the generic counterpart of Simulation.Run usable with any Simulator.
func Run(sim Simulator, totalSteps int, emit func(step int, field []float64)) error {
	for sim.StepIndex() < totalSteps {
		if err := sim.StepOnce(); err != nil {
			return fmt.Errorf("step %d: %w", sim.StepIndex()+1, err)
		}
		if emit != nil {
			emit(sim.StepIndex(), sim.Field())
		}
	}
	return nil
}
