// Package trace writes experiment outputs: aligned text tables matching the
// paper's table layout, and CSV series files for the figures. The bench
// harness prints tables to stdout and optionally dumps CSVs next to the
// binary for plotting.
package trace

import (
	"fmt"
	"io"
	"os"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// WriteCSV writes named columns of equal length to path.
func WriteCSV(path string, names []string, cols ...[]float64) error {
	if len(names) != len(cols) {
		return fmt.Errorf("trace: %d names for %d columns", len(names), len(cols))
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("trace: column %q has %d rows, want %d", names[i], len(c), n)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, strings.Join(names, ",")); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		parts := make([]string, len(cols))
		for c := range cols {
			parts[c] = fmt.Sprintf("%g", cols[c][r])
		}
		if _, err := fmt.Fprintln(f, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}
