package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "Buffer", "GPUs", "MSE")
	tb.AddRow("Reservoir", 4, 65.0)
	tb.AddRow("FIFO", 1, 391.1234)
	out := tb.String()
	if !strings.Contains(out, "== Table 1 ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "Buffer") || !strings.Contains(lines[1], "MSE") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "Reservoir") || !strings.Contains(out, "391.1") {
		t.Fatalf("rows missing:\n%s", out)
	}
	// Columns aligned: "GPUs" column position identical in both data rows.
	h := strings.Index(lines[1], "GPUs")
	if lines[3][h] == ' ' && lines[4][h] == ' ' {
		t.Fatalf("column alignment broken:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.csv")
	err := WriteCSV(path, []string{"t", "v"}, []float64{1, 2, 3}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "t,v\n1,10\n2,20\n3,30\n"
	if string(data) != want {
		t.Fatalf("csv = %q", data)
	}
}

func TestWriteCSVValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := WriteCSV(path, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("expected name/column mismatch error")
	}
	if err := WriteCSV(path, []string{"a", "b"}, []float64{1, 2}, []float64{3}); err == nil {
		t.Fatal("expected ragged column error")
	}
}
