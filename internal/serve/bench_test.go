package serve

// Closed-loop load benchmark for the serving tier: C client connections
// each issue sequential predict requests over loopback TCP, so offered
// load rises with concurrency until the replica pool saturates. Each
// variant reports achieved throughput (qps) plus p50/p99 request latency,
// giving the latency-vs-QPS curve for 1→N replicas and micro-batched vs
// unbatched dispatch. BENCH_SERVE.json at the repo root snapshots the
// numbers; CI runs a -benchtime=1x smoke of every variant.

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"

	"melissa"
	"melissa/internal/client"
	"melissa/internal/nn"
)

// benchQueryPool is sized so closed-loop clients cycling through it keep
// the prediction cache cold (pool ≫ cache) unless a variant wants hits.
const benchQueryPool = 512

// benchSurrogate is bigger than the unit-test model (grid 16 → 256-float
// fields, 64×64 hidden): each 1-row forward streams the full ~84 KB weight
// slab, so the benchmark exposes what micro-batching actually buys —
// amortizing that weight traffic across the fused batch.
func benchSurrogate(b *testing.B) *melissa.Surrogate {
	b.Helper()
	cfg := melissa.DefaultConfig()
	cfg.GridN = 16
	cfg.StepsPerSim = 6
	cfg.Hidden = []int{64, 64}
	cfg.Seed = 7
	norm := melissa.Heat().Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		b.Fatal(err)
	}
	sur, err := melissa.LoadSurrogateLegacy(&buf, cfg.GridN, cfg.StepsPerSim, cfg.Dt, cfg.Hidden, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	return sur
}

type serveBenchVariant struct {
	name     string
	cfg      Config
	conc     int  // concurrent closed-loop client connections
	cacheHit bool // replay one query so every request after the first hits the cache
}

func BenchmarkServe(b *testing.B) {
	variants := []serveBenchVariant{
		// Latency floor: a single closed-loop client never coalesces, so
		// this is the per-request cost with zero queueing.
		{name: "batched/replicas=1/conc=1",
			cfg: Config{MaxBatch: 32, BatchWait: 200 * time.Microsecond, Replicas: 1}, conc: 1},
		// Saturation: 32 clients against one replica — one request per
		// forward pass vs up to 32 coalesced into one fused GEMM.
		{name: "unbatched/replicas=1/conc=32",
			cfg: Config{MaxBatch: 1, Replicas: 1}, conc: 32},
		{name: "batched/replicas=1/conc=32",
			cfg: Config{MaxBatch: 32, BatchWait: 200 * time.Microsecond, Replicas: 1}, conc: 32},
		// Horizontal scaling: the same saturating load over a 4-replica
		// pool. MaxBatch is sized to the per-worker share of the closed
		// loop (32 clients / 4 workers): every forward always runs at the
		// fixed MaxBatch shape (the determinism contract), so oversizing
		// it would pay for rows the fragmented stream never fills.
		{name: "unbatched/replicas=4/conc=32",
			cfg: Config{MaxBatch: 1, Replicas: 4}, conc: 32},
		{name: "batched/replicas=4/conc=32",
			cfg: Config{MaxBatch: 8, BatchWait: 200 * time.Microsecond, Replicas: 4}, conc: 32},
		// Cache ceiling: all hits after warm-up, no forward pass at all.
		{name: "cachehit/conc=32",
			cfg:  Config{MaxBatch: 32, BatchWait: 200 * time.Microsecond, Replicas: 1, CacheEntries: 64},
			conc: 32, cacheHit: true},
	}
	sur := benchSurrogate(b)
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) { benchServe(b, sur, v) })
	}
}

func benchServe(b *testing.B, sur *melissa.Surrogate, v serveBenchVariant) {
	s := NewServer(sur, v.cfg)
	addr := startServer(b, s)

	params, ts := testQueries(benchQueryPool, rand.New(rand.NewPCG(11, 13)))
	if v.cacheHit {
		for i := range params {
			params[i], ts[i] = params[0], ts[0]
		}
	}

	conns := make([]*client.PredictConn, v.conc)
	for i := range conns {
		c, err := client.DialPredict(addr, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	// Warm every connection (and the cache-hit variant's cache entry) off
	// the clock.
	var field []float32
	for _, c := range conns {
		var err error
		if field, _, err = c.PredictInto(field, params[0], ts[0]); err != nil {
			b.Fatal(err)
		}
	}

	// Closed loop: b.N requests split across the connections, each client
	// timing every request. Per-client latency slices are preallocated so
	// measurement itself stays off the allocator.
	per := b.N / v.conc
	if per == 0 {
		per = 1
	}
	lats := make([][]time.Duration, v.conc)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for i, c := range conns {
		wg.Add(1)
		lats[i] = make([]time.Duration, per)
		go func(i int, c *client.PredictConn) {
			defer wg.Done()
			var field []float32
			for r := 0; r < per; r++ {
				q := (i*per + r) % benchQueryPool
				t0 := time.Now()
				var err error
				if field, _, err = c.PredictInto(field, params[q], ts[q]); err != nil {
					b.Error(err)
					return
				}
				lats[i][r] = time.Since(t0)
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	all := make([]time.Duration, 0, v.conc*per)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(all)-1))
		return float64(all[idx].Nanoseconds()) / 1e3
	}
	b.ReportMetric(float64(len(all))/elapsed.Seconds(), "qps")
	b.ReportMetric(pct(0.50), "p50-µs")
	b.ReportMetric(pct(0.99), "p99-µs")
	b.ReportMetric(0, "ns/op") // latency percentiles are the meaningful axis
}
