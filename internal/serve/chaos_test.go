package serve

// Deterministic chaos for the serving tier (run under -race; seeds come
// from MELISSA_CHAOS_SEED via transport.ChaosSeed so a CI failure replays
// locally). The scenarios mirror the training-side chaos suite: a wedged
// (never-reading) client driving the queue past the shed threshold, a
// slow-drip client that is slow but correct, a half-open link the client
// retry policy must reconnect through, and a graceful drain under load.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"melissa"
	"melissa/internal/client"
	"melissa/internal/nn"
	"melissa/internal/protocol"
	"melissa/internal/transport"

	"math/rand/v2"
)

// chaosSurrogate is testSurrogate with a controllable grid — the wedge
// scenario needs fat responses (gridN² floats) so a non-reading client
// jams its TCP send buffer within a few frames.
func chaosSurrogate(t testing.TB, gridN int, hidden []int, seed uint64) *melissa.Surrogate {
	t.Helper()
	cfg := melissa.DefaultConfig()
	cfg.GridN = gridN
	cfg.StepsPerSim = 6
	cfg.Hidden = hidden
	cfg.Seed = seed
	norm := melissa.Heat().Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), seed)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	sur, err := melissa.LoadSurrogateLegacy(&buf, cfg.GridN, cfg.StepsPerSim, cfg.Dt, cfg.Hidden, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sur
}

// TestServeChaosWedgedClient is the overload acceptance scenario: one
// chaos-wedged client (reads stall after the first frame) pipelines a
// burst far past the queue capacity. The server must shed the excess with
// typed overloaded errors, tear down only the wedged connection once it
// stops draining responses, and keep answering well-behaved retrying
// clients with bounded latency and bit-exact fields throughout.
func TestServeChaosWedgedClient(t *testing.T) {
	sur := chaosSurrogate(t, 64, []int{64, 64}, 41) // 16KB responses
	cfg := Config{
		Replicas:     1,
		MaxBatch:     8,
		BatchWait:    200 * time.Microsecond,
		QueueSize:    64,
		OutboxFrames: 32,
		WriteTimeout: 150 * time.Millisecond,
		CacheEntries: 0,
	}
	s := NewServer(sur, cfg)
	addr := startServer(t, s)

	rng := rand.New(rand.NewPCG(transport.ChaosSeed(42), 7))
	params, ts := testQueries(12, rng)
	want := expectedFields(t, sur, cfg.MaxBatch, params, ts)

	// The wedged client: small receive buffer, reads frozen by chaos after
	// one frame, and a pipelined burst of far more requests than QueueSize.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if tc, ok := raw.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	chaos := transport.NewChaos(transport.ChaosConfig{Seed: transport.ChaosSeed(42), StallReadsAfter: 1})
	wedged := chaos.WrapLabeled("wedged", raw)
	t.Cleanup(func() { wedged.Close() })

	const burstN = 2000
	var burst []byte
	var wreq protocol.PredictRequest
	for i := 0; i < burstN; i++ {
		wreq.ID = uint64(i + 1)
		wreq.T = ts[i%len(ts)]
		wreq.Params = params[i%len(params)]
		burst = protocol.AppendEncode(burst, &wreq)
	}
	go func() {
		wedged.Write(burst)
		io.Copy(io.Discard, wedged) // first read passes, then the stall wedges us
	}()

	// Well-behaved clients predict through the overload with retry.
	const goodClients, perClient = 3, 15
	latencyBound := 5 * time.Second
	var wg sync.WaitGroup
	var slowest atomic.Int64
	for g := 0; g < goodClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.DialPredictOpts(addr, client.PredictOptions{
				DialTimeout:   5 * time.Second,
				CallTimeout:   10 * time.Second,
				RetryAttempts: 10,
				RetryBackoff:  5 * time.Millisecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			var field []float32
			for i := 0; i < perClient; i++ {
				q := (g*perClient + i) % len(params)
				start := time.Now()
				field, _, err = c.PredictInto(field, params[q], ts[q])
				dur := time.Since(start)
				if err != nil {
					t.Errorf("good client %d request %d failed through overload: %v", g, i, err)
					return
				}
				if dur > latencyBound {
					t.Errorf("good client %d request %d took %v (worker wedged by slow client?)", g, i, dur)
					return
				}
				for {
					old := slowest.Load()
					if int64(dur) <= old || slowest.CompareAndSwap(old, int64(dur)) {
						break
					}
				}
				if !bitsEqual(field, want[q]) {
					t.Errorf("good client %d request %d: torn or wrong field", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The wedged connection must be detected and torn down (outbox overflow
	// or write-deadline expiry) within the write timeout scale.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().SlowClients == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := s.Stats()
	if st.Shed == 0 {
		t.Errorf("stats %+v: burst of %d into a queue of %d shed nothing", st, burstN, cfg.QueueSize)
	}
	if st.SlowClients == 0 {
		t.Errorf("stats %+v: wedged client never torn down as slow", st)
	}
	t.Logf("chaos wedge: shed=%d slowClients=%d responses=%d slowest good call=%v",
		st.Shed, st.SlowClients, st.Responses, time.Duration(slowest.Load()))
}

// TestServeChaosSlowDripClient: a client that drains responses slowly but
// steadily is merely slow — the server must keep serving it bit-exact
// answers and must not count it as a slow-client teardown.
func TestServeChaosSlowDripClient(t *testing.T) {
	sur := testSurrogate(t, 43)
	cfg := Config{Replicas: 1, MaxBatch: 4, WriteTimeout: 2 * time.Second, CacheEntries: 0}
	s := NewServer(sur, cfg)
	addr := startServer(t, s)

	chaos := transport.NewChaos(transport.ChaosConfig{
		Seed:          transport.ChaosSeed(42),
		ReadDelayRate: 1.0,
		ReadDelay:     time.Millisecond,
	})
	c, err := client.DialPredictOpts(addr, client.PredictOptions{
		DialTimeout: 5 * time.Second,
		CallTimeout: 10 * time.Second,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			return chaos.WrapLabeled("drip", nc), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewPCG(transport.ChaosSeed(42), 11))
	params, ts := testQueries(8, rng)
	want := expectedFields(t, sur, cfg.MaxBatch, params, ts)
	var field []float32
	for i := 0; i < 32; i++ {
		q := i % len(params)
		field, _, err = c.PredictInto(field, params[q], ts[q])
		if err != nil {
			t.Fatalf("drip request %d: %v", i, err)
		}
		if !bitsEqual(field, want[q]) {
			t.Fatalf("drip request %d: wrong field", i)
		}
	}
	if st := s.Stats(); st.SlowClients != 0 || st.SendErrors != 0 {
		t.Fatalf("stats %+v: slow-but-draining client was torn down", st)
	}
}

// TestServeChaosHalfOpenReconnect: the first connection goes half-open
// (writes blackholed, reads stalled) after its first frame; the client's
// per-call timeout must detect it and the retry policy must redial and
// succeed on a fresh connection.
func TestServeChaosHalfOpenReconnect(t *testing.T) {
	sur := testSurrogate(t, 47)
	s := NewServer(sur, Config{Replicas: 1, MaxBatch: 4, CacheEntries: 0})
	addr := startServer(t, s)

	chaos := transport.NewChaos(transport.ChaosConfig{Seed: transport.ChaosSeed(42), HalfOpenAfterWrites: 1})
	var dials atomic.Int64
	c, err := client.DialPredictOpts(addr, client.PredictOptions{
		DialTimeout:   5 * time.Second,
		CallTimeout:   300 * time.Millisecond,
		RetryAttempts: 4,
		RetryBackoff:  2 * time.Millisecond,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				return chaos.WrapLabeled("half-open", nc), nil
			}
			return nc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewPCG(transport.ChaosSeed(42), 13))
	params, ts := testQueries(1, rng)
	want := expectedFields(t, sur, 4, params, ts)
	field, _, err := c.Predict(params[0], ts[0])
	if err != nil {
		t.Fatalf("half-open link not recovered: %v", err)
	}
	if !bitsEqual(field, want[0]) {
		t.Fatal("wrong field after half-open recovery")
	}
	if n := dials.Load(); n < 2 {
		t.Fatalf("expected a reconnect through the half-open link, saw %d dials", n)
	}
}

// TestServeChaosDrainUnderLoad: Drain while retrying clients hammer the
// server. Everything admitted before the drain must be answered and
// flushed (a clean drain, zero torn responses); requests arriving during
// the drain get typed draining/overloaded rejections or a closed
// connection, never a corrupt answer.
func TestServeChaosDrainUnderLoad(t *testing.T) {
	sur := testSurrogate(t, 53)
	cfg := Config{Replicas: 2, MaxBatch: 8, CacheEntries: 0}
	s := NewServer(sur, cfg)
	addr := startServer(t, s)

	rng := rand.New(rand.NewPCG(transport.ChaosSeed(42), 17))
	params, ts := testQueries(16, rng)
	want := expectedFields(t, sur, cfg.MaxBatch, params, ts)

	const clients, perClient = 4, 400
	var wg sync.WaitGroup
	var successes, rejected atomic.Int64
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.DialPredictOpts(addr, client.PredictOptions{
				DialTimeout:   5 * time.Second,
				CallTimeout:   5 * time.Second,
				RetryAttempts: 2,
				RetryBackoff:  time.Millisecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			var field []float32
			for i := 0; i < perClient; i++ {
				q := (g + i) % len(params)
				field, _, err = c.PredictInto(field, params[q], ts[q])
				if err != nil {
					if errors.Is(err, client.ErrOverloaded) {
						rejected.Add(1)
					}
					return // drain reached this client
				}
				if !bitsEqual(field, want[q]) {
					t.Errorf("client %d request %d: torn response during drain", g, i)
					return
				}
				successes.Add(1)
			}
		}(g)
	}

	// Let the load establish, then drain mid-flight.
	for successes.Load() < 50 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under load not clean: %v", err)
	}
	wg.Wait()

	st := s.Stats()
	if st.Drain != DrainClean {
		t.Fatalf("stats %+v: drain outcome %d, want clean (%d)", st, st.Drain, DrainClean)
	}
	if successes.Load() < 50 {
		t.Fatalf("only %d successes before drain", successes.Load())
	}
	t.Logf("drain under load: %d answered, %d typed rejections, stats %+v", successes.Load(), rejected.Load(), st)
}

// TestServeDeadlineExpiry covers both deadline rejection points without
// chaos: a request already past its budget at admission, and one whose
// budget elapses while it waits in the queue (swept at batch assembly,
// never computed).
func TestServeDeadlineExpiry(t *testing.T) {
	sur := testSurrogate(t, 41)
	s := NewServer(sur, Config{Replicas: 1, MaxBatch: 4, CacheEntries: 0})
	defer s.Close()

	p1, p2 := net.Pipe()
	defer p2.Close()
	c := s.newConn(p1)
	defer c.shutdown()
	rd := protocol.NewReader(bufio.NewReader(p2))

	rng := rand.New(rand.NewPCG(19, 23))
	params, ts := testQueries(2, rng)

	// Admit-time expiry: the frame's receive timestamp is already older
	// than its budget.
	req := leaseRequest(params[0], ts[0])
	req.DeadlineMs = 5
	s.admit(c, req, time.Now().Add(-50*time.Millisecond))
	msg, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	perr, ok := msg.(protocol.PredictError)
	if !ok || perr.Code != protocol.PredictErrExpired {
		t.Fatalf("admit-time expiry: got %T %+v, want PredictErrExpired", msg, msg)
	}

	// Batch-assembly expiry: the pending's deadline passed while queued.
	req2 := leaseRequest(params[1], ts[1])
	req2.ID = 2
	p := s.leasePending(c, req2, time.Now().Add(-time.Millisecond))
	s.serveBatch(s.model.Load(), []*pending{p}, nil)
	msg, err = rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	perr, ok = msg.(protocol.PredictError)
	if !ok || perr.Code != protocol.PredictErrExpired || perr.ID != 2 {
		t.Fatalf("batch-assembly expiry: got %T %+v, want PredictErrExpired for ID 2", msg, msg)
	}

	st := s.Stats()
	if st.DeadlineExpired != 2 {
		t.Fatalf("stats %+v: %d deadline expiries counted, want 2", st, st.DeadlineExpired)
	}
	if st.Batches != 0 {
		t.Fatalf("stats %+v: an expired request was computed", st)
	}
}
