package serve

import (
	"encoding/binary"
	"math"
	"sync"
	"time"
)

// predictCache is an LRU map from interned (params, t) query keys to
// predicted fields. Exact float32 bit-matching is the right key discipline
// here: replicas pin their GEMM shape (see melissa.Replica), so a query's
// answer is a deterministic function of the checkpoint and the query bits,
// and a cached field is indistinguishable from a fresh compute.
//
// Staleness across hot reloads has two policies. The default (keepEpochs
// 0) flushes the whole cache on every reload — the new checkpoint answers
// every query differently, so every entry is stale at once. With keepEpochs
// N > 0, reloads instead raise the epoch floor to current−N and entries
// survive until they fall more than N epochs behind; a lookup that lands on
// such an entry (or one older than ttl) evicts it lazily and counts it as
// an expired miss. That mode serves slightly-stale fields on purpose:
// during training, consecutive published checkpoints are close enough that
// an answer a few epochs old is a useful approximation, and the cache stays
// warm across the reload storm of -publish-every.
//
// The hit path is allocation-free: keys are built in a caller-owned scratch
// buffer and looked up via the compiler's no-copy map[string(bytes)] form,
// and the hit copies the field into a caller-owned buffer under the lock
// (entries recycle their storage on eviction, so references must not
// escape). Inserts allocate only the interned key string once the cache is
// warm — evicted entries donate their field capacity to the newcomer.
type predictCache struct {
	mu         sync.Mutex
	capacity   int
	keepEpochs int              // entries may lag this many epochs; 0 = flush on reload
	ttl        time.Duration    // entries older than this expire lazily; 0 = no TTL
	now        func() time.Time // injectable clock for TTL tests
	minEpoch   uint32           // entries and inserts below this epoch are stale
	entries    map[string]*cacheEntry
	head       *cacheEntry // most recently used
	tail       *cacheEntry // least recently used

	hits, misses, evictions, expired uint64
}

type cacheEntry struct {
	key        string
	epoch      uint32
	stamp      time.Time // insert/refresh time, for TTL expiry
	field      []float32
	prev, next *cacheEntry
}

func newPredictCache(capacity, keepEpochs int, ttl time.Duration) *predictCache {
	if capacity <= 0 {
		return nil // a nil cache disables caching at every call site
	}
	return &predictCache{
		capacity:   capacity,
		keepEpochs: keepEpochs,
		ttl:        ttl,
		now:        time.Now,
		entries:    make(map[string]*cacheEntry, capacity),
	}
}

// appendKey builds the interned query key: the little-endian bit patterns
// of every parameter followed by t. Bit patterns, not values, so -0 and
// NaN payloads key distinctly and key building needs no float compares.
func appendKey(dst []byte, params []float32, t float32) []byte {
	for _, v := range params {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(t))
}

// get looks up a query and, on a hit, copies the cached field into dst
// (grown as needed) and returns it with the epoch that computed it. Returns
// nil on a miss. An entry below the epoch floor or past the TTL is evicted
// here, lazily, and reported as an expired miss — expiry never takes a
// sweep pass. key is the caller's appendKey scratch; it is not retained.
func (c *predictCache) get(key []byte, dst []float32) ([]float32, uint32) {
	if c == nil {
		return nil, 0
	}
	c.mu.Lock()
	e, ok := c.entries[string(key)] // no-copy string conversion in map lookup
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, 0
	}
	if e.epoch < c.minEpoch || (c.ttl > 0 && c.now().Sub(e.stamp) > c.ttl) {
		c.unlink(e)
		delete(c.entries, e.key)
		c.expired++
		c.misses++
		c.mu.Unlock()
		return nil, 0
	}
	c.moveToFront(e)
	c.hits++
	if cap(dst) < len(e.field) {
		dst = make([]float32, len(e.field))
	}
	dst = dst[:len(e.field)]
	copy(dst, e.field)
	epoch := e.epoch
	c.mu.Unlock()
	return dst, epoch
}

// put inserts a freshly computed field, evicting the least recently used
// entry at capacity. The evicted entry's struct and field storage are
// reused, so a warm cache allocates only the interned key per insert.
// Inserts tagged with an epoch below the flush floor are dropped: they come
// from in-flight batches that started on a pre-reload model and would
// otherwise repopulate the cache with stale fields after the flush.
func (c *predictCache) put(key []byte, epoch uint32, field []float32) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if epoch < c.minEpoch {
		c.mu.Unlock()
		return
	}
	if e, ok := c.entries[string(key)]; ok {
		// Raced with another worker computing the same query; refresh.
		e.epoch = epoch
		e.stamp = c.now()
		e.field = append(e.field[:0], field...)
		c.moveToFront(e)
		c.mu.Unlock()
		return
	}
	var e *cacheEntry
	if len(c.entries) >= c.capacity {
		e = c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.evictions++
	} else {
		e = &cacheEntry{}
	}
	e.key = string(key)
	e.epoch = epoch
	e.stamp = c.now()
	e.field = append(e.field[:0], field...)
	c.entries[e.key] = e
	c.pushFront(e)
	c.mu.Unlock()
}

// advanceEpoch is the keepEpochs-mode reload hook: raise the epoch floor to
// cur−keepEpochs without dropping anything. Entries within the window keep
// serving (slightly stale by design); entries that fell behind the floor
// expire lazily on their next lookup, and put drops inserts below the floor
// exactly as in flush mode.
func (c *predictCache) advanceEpoch(cur uint32) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if keep := uint32(c.keepEpochs); cur > keep && cur-keep > c.minEpoch {
		c.minEpoch = cur - keep
	}
	c.mu.Unlock()
}

// flush drops every entry and raises the insert floor to minEpoch. Called on
// hot reload: the new checkpoint answers every query differently, so the
// whole cache is stale at once — and batches still running on the old model
// must not be allowed to re-insert after the flush (put drops them).
func (c *predictCache) flush(minEpoch uint32) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if minEpoch > c.minEpoch {
		c.minEpoch = minEpoch
	}
	clear(c.entries)
	c.head, c.tail = nil, nil
	c.mu.Unlock()
}

// counters returns the monotonic hit/miss/eviction/expiry totals. Expired
// lookups are counted in both misses and expired: every lookup is exactly
// one hit or one miss, and expired tells what share of the misses were
// lazily evicted stale entries rather than cold keys.
func (c *predictCache) counters() (hits, misses, evictions, expired uint64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.expired
}

func (c *predictCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *predictCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *predictCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *predictCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
