package serve

import (
	"testing"
	"time"
)

func cacheKey(params []float32, t float32) []byte {
	return appendKey(nil, params, t)
}

// TestCacheLRUEviction: the cache must hold exactly capacity entries,
// evicting the least recently used — and a get must refresh recency.
func TestCacheLRUEviction(t *testing.T) {
	c := newPredictCache(3, 0, 0)
	var dst []float32
	put := func(id float32) { c.put(cacheKey([]float32{id}, 0), 1, []float32{id * 10}) }
	has := func(id float32) bool {
		f, _ := c.get(cacheKey([]float32{id}, 0), dst)
		return f != nil
	}
	put(1)
	put(2)
	put(3)
	if !has(1) || !has(2) || !has(3) {
		t.Fatal("warm entries missing")
	}
	has(1) // refresh 1 → LRU order is now 2, 3, 1
	put(4) // evicts 2
	if has(2) {
		t.Fatal("entry 2 survived eviction")
	}
	if !has(1) || !has(3) || !has(4) {
		t.Fatal("wrong entry evicted")
	}
	if c.len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.len())
	}
	_, _, evictions, _ := c.counters()
	if evictions != 1 {
		t.Fatalf("%d evictions, want 1", evictions)
	}
}

// TestCacheHitReturnsStoredField: hits must copy out the exact field and
// epoch, misses must return nil, and counters must track both.
func TestCacheHitReturnsStoredField(t *testing.T) {
	c := newPredictCache(8, 0, 0)
	key := cacheKey([]float32{1, 2, 3}, 0.5)
	want := []float32{9, 8, 7}
	c.put(key, 5, want)
	got, epoch := c.get(key, nil)
	if epoch != 5 || len(got) != len(want) {
		t.Fatalf("hit returned %v epoch %d", got, epoch)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("field[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if f, _ := c.get(cacheKey([]float32{1, 2, 3}, 0.25), nil); f != nil {
		t.Fatal("different t hit the same entry")
	}
	hits, misses, _, _ := c.counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCacheFlush empties everything at once (the reload path) and raises
// the insert floor: puts from batches that started on the pre-reload model
// carry an older epoch and must be dropped, not re-inserted.
func TestCacheFlush(t *testing.T) {
	c := newPredictCache(8, 0, 0)
	for i := float32(0); i < 5; i++ {
		c.put(cacheKey([]float32{i}, 0), 1, []float32{i})
	}
	c.flush(2)
	if c.len() != 0 {
		t.Fatalf("cache holds %d entries after flush", c.len())
	}
	if f, _ := c.get(cacheKey([]float32{1}, 0), nil); f != nil {
		t.Fatal("flushed entry still served")
	}
	c.put(cacheKey([]float32{9}, 0), 1, []float32{9}) // straggler from the old model
	if f, _ := c.get(cacheKey([]float32{9}, 0), nil); f != nil {
		t.Fatal("stale-epoch put landed after flush")
	}
	c.put(cacheKey([]float32{1}, 0), 2, []float32{1}) // reusable after flush
	if f, _ := c.get(cacheKey([]float32{1}, 0), nil); f == nil {
		t.Fatal("cache unusable after flush")
	}
}

// TestCacheKeepEpochs: with a keep window, reloads (advanceEpoch) must not
// flush — entries within the window keep serving, entries that fall more
// than keepEpochs behind expire lazily on lookup and count as expired
// misses, and stragglers from below the floor are dropped on put.
func TestCacheKeepEpochs(t *testing.T) {
	c := newPredictCache(8, 2, 0)
	key1 := cacheKey([]float32{1}, 0)
	key2 := cacheKey([]float32{2}, 0)
	c.put(key1, 1, []float32{10})

	c.advanceEpoch(2) // floor stays 0: epoch 1 is within the 2-epoch window
	if f, epoch := c.get(key1, nil); f == nil || epoch != 1 {
		t.Fatal("entry within the keep window must survive a reload")
	}

	c.advanceEpoch(3) // floor 1: epoch-1 entry sits exactly at the floor
	if f, _ := c.get(key1, nil); f == nil {
		t.Fatal("entry exactly keepEpochs behind must still serve")
	}

	c.advanceEpoch(4) // floor 2: epoch-1 entry is now 3 epochs behind
	if f, _ := c.get(key1, nil); f != nil {
		t.Fatal("entry beyond the keep window still served")
	}
	if c.len() != 0 {
		t.Fatalf("expired entry not evicted: cache holds %d", c.len())
	}
	_, _, _, expired := c.counters()
	if expired != 1 {
		t.Fatalf("expired=%d, want 1", expired)
	}

	c.put(key2, 1, []float32{20}) // straggler below the floor
	if f, _ := c.get(key2, nil); f != nil {
		t.Fatal("below-floor put landed")
	}
	c.put(key2, 4, []float32{20})
	if f, _ := c.get(key2, nil); f == nil {
		t.Fatal("current-epoch put rejected")
	}
}

// TestCacheTTL: entries older than the TTL must expire lazily on lookup
// (counted as expired misses) and a put must refresh the clock.
func TestCacheTTL(t *testing.T) {
	c := newPredictCache(8, 0, time.Minute)
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	key := cacheKey([]float32{1}, 0)

	c.put(key, 1, []float32{10})
	now = now.Add(59 * time.Second)
	if f, _ := c.get(key, nil); f == nil {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(2 * time.Second)
	if f, _ := c.get(key, nil); f != nil {
		t.Fatal("entry served past its TTL")
	}
	if c.len() != 0 {
		t.Fatal("expired entry not evicted")
	}
	hits, misses, _, expired := c.counters()
	if hits != 1 || misses != 1 || expired != 1 {
		t.Fatalf("hits=%d misses=%d expired=%d, want 1/1/1", hits, misses, expired)
	}

	c.put(key, 1, []float32{10}) // re-insert stamps the current clock
	now = now.Add(30 * time.Second)
	c.put(key, 1, []float32{11}) // refresh restamps
	now = now.Add(45 * time.Second)
	if f, _ := c.get(key, nil); f == nil || f[0] != 11 {
		t.Fatal("refreshed entry expired on the original stamp")
	}
}

// TestCacheDisabled: a nil cache (capacity 0) must no-op on every call.
func TestCacheDisabled(t *testing.T) {
	c := newPredictCache(0, 0, 0)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.put(cacheKey([]float32{1}, 0), 1, []float32{1})
	if f, _ := c.get(cacheKey([]float32{1}, 0), nil); f != nil {
		t.Fatal("disabled cache returned a hit")
	}
	c.flush(1)
	if h, m, e, x := c.counters(); h|m|e|x != 0 {
		t.Fatal("disabled cache counted something")
	}
}
