package serve

import (
	"testing"
)

func cacheKey(params []float32, t float32) []byte {
	return appendKey(nil, params, t)
}

// TestCacheLRUEviction: the cache must hold exactly capacity entries,
// evicting the least recently used — and a get must refresh recency.
func TestCacheLRUEviction(t *testing.T) {
	c := newPredictCache(3)
	var dst []float32
	put := func(id float32) { c.put(cacheKey([]float32{id}, 0), 1, []float32{id * 10}) }
	has := func(id float32) bool {
		f, _ := c.get(cacheKey([]float32{id}, 0), dst)
		return f != nil
	}
	put(1)
	put(2)
	put(3)
	if !has(1) || !has(2) || !has(3) {
		t.Fatal("warm entries missing")
	}
	has(1)  // refresh 1 → LRU order is now 2, 3, 1
	put(4)  // evicts 2
	if has(2) {
		t.Fatal("entry 2 survived eviction")
	}
	if !has(1) || !has(3) || !has(4) {
		t.Fatal("wrong entry evicted")
	}
	if c.len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.len())
	}
	_, _, evictions := c.counters()
	if evictions != 1 {
		t.Fatalf("%d evictions, want 1", evictions)
	}
}

// TestCacheHitReturnsStoredField: hits must copy out the exact field and
// epoch, misses must return nil, and counters must track both.
func TestCacheHitReturnsStoredField(t *testing.T) {
	c := newPredictCache(8)
	key := cacheKey([]float32{1, 2, 3}, 0.5)
	want := []float32{9, 8, 7}
	c.put(key, 5, want)
	got, epoch := c.get(key, nil)
	if epoch != 5 || len(got) != len(want) {
		t.Fatalf("hit returned %v epoch %d", got, epoch)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("field[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if f, _ := c.get(cacheKey([]float32{1, 2, 3}, 0.25), nil); f != nil {
		t.Fatal("different t hit the same entry")
	}
	hits, misses, _ := c.counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCacheFlush empties everything at once (the reload path) and raises
// the insert floor: puts from batches that started on the pre-reload model
// carry an older epoch and must be dropped, not re-inserted.
func TestCacheFlush(t *testing.T) {
	c := newPredictCache(8)
	for i := float32(0); i < 5; i++ {
		c.put(cacheKey([]float32{i}, 0), 1, []float32{i})
	}
	c.flush(2)
	if c.len() != 0 {
		t.Fatalf("cache holds %d entries after flush", c.len())
	}
	if f, _ := c.get(cacheKey([]float32{1}, 0), nil); f != nil {
		t.Fatal("flushed entry still served")
	}
	c.put(cacheKey([]float32{9}, 0), 1, []float32{9}) // straggler from the old model
	if f, _ := c.get(cacheKey([]float32{9}, 0), nil); f != nil {
		t.Fatal("stale-epoch put landed after flush")
	}
	c.put(cacheKey([]float32{1}, 0), 2, []float32{1}) // reusable after flush
	if f, _ := c.get(cacheKey([]float32{1}, 0), nil); f == nil {
		t.Fatal("cache unusable after flush")
	}
}

// TestCacheDisabled: a nil cache (capacity 0) must no-op on every call.
func TestCacheDisabled(t *testing.T) {
	c := newPredictCache(0)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.put(cacheKey([]float32{1}, 0), 1, []float32{1})
	if f, _ := c.get(cacheKey([]float32{1}, 0), nil); f != nil {
		t.Fatal("disabled cache returned a hit")
	}
	c.flush(1)
	if h, m, e := c.counters(); h|m|e != 0 {
		t.Fatal("disabled cache counted something")
	}
}
