package serve

import (
	"bytes"
	"math"
	"math/rand/v2"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"melissa"
	"melissa/internal/client"
	"melissa/internal/nn"
	"melissa/internal/protocol"
)

// testSurrogate builds a small untrained heat surrogate with seeded random
// weights — serving mechanics don't need a training run, only a loadable
// model. Different seeds give models that answer every query differently,
// which is what the reload tests need.
func testSurrogate(t testing.TB, seed uint64) *melissa.Surrogate {
	t.Helper()
	cfg := melissa.DefaultConfig()
	cfg.GridN = 8
	cfg.StepsPerSim = 6
	cfg.Hidden = []int{24, 24}
	cfg.Seed = seed
	norm := melissa.Heat().Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), seed)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	sur, err := melissa.LoadSurrogateLegacy(&buf, cfg.GridN, cfg.StepsPerSim, cfg.Dt, cfg.Hidden, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sur
}

// testQueries draws n in-range float32 heat queries.
func testQueries(n int, rng *rand.Rand) (params [][]float32, ts []float32) {
	min, max := melissa.Heat().ParamBounds()
	params = make([][]float32, n)
	ts = make([]float32, n)
	for i := range params {
		p := make([]float32, len(min))
		for j := range p {
			p[j] = float32(min[j] + rng.Float64()*(max[j]-min[j]))
		}
		params[i] = p
		ts[i] = float32(rng.IntN(6)) + 1
	}
	return params, ts
}

// expectedFields computes the reference answer for each query on a replica
// with the server's batch shape — the bits every served response must match.
func expectedFields(t testing.TB, sur *melissa.Surrogate, maxBatch int, params [][]float32, ts []float32) [][]float32 {
	t.Helper()
	rep := sur.NewReplica(maxBatch)
	out := make([][]float32, len(params))
	for q := range params {
		err := rep.PredictBatchRaw(1,
			func(int) ([]float32, float32) { return params[q], ts[q] },
			func(_ int, field []float32) { out[q] = append([]float32(nil), field...) })
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// startServer serves s on a loopback listener and returns its address.
func startServer(t testing.TB, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestServeCloseUnblocksIdleConns: Close must return even while clients
// hold idle connections open — handler goroutines parked in a socket read
// are unblocked by Close's connection sweep, not by waiting for every
// client to hang up.
func TestServeCloseUnblocksIdleConns(t *testing.T) {
	sur := testSurrogate(t, 47)
	s := NewServer(sur, Config{MaxBatch: 4, Replicas: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	conns := make([]*client.PredictConn, 3)
	for i := range conns {
		c, err := client.DialPredict(ln.Addr().String(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		defer c.Close()
	}
	// One round trip each proves the handlers are up and parked in Next.
	rng := rand.New(rand.NewPCG(11, 13))
	params, ts := testQueries(len(conns), rng)
	for i, c := range conns {
		if _, _, err := c.Predict(params[i], ts[i]); err != nil {
			t.Fatal(err)
		}
	}
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on idle client connections")
	}
}

// TestServeEndToEnd: a client's predictions over loopback TCP must be
// bit-identical to the local replica reference, Info must describe the
// model, repeated queries must hit the cache, and malformed queries must be
// rejected without killing the connection.
func TestServeEndToEnd(t *testing.T) {
	sur := testSurrogate(t, 41)
	cfg := Config{MaxBatch: 8, Replicas: 2, CacheEntries: 64}
	s := NewServer(sur, cfg)
	addr := startServer(t, s)

	c, err := client.DialPredict(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Problem != melissa.HeatName || int(info.ParamDim) != sur.ParamDim() ||
		int(info.OutputDim) != sur.OutputDim() || info.Epoch != 1 {
		t.Fatalf("bad server info %+v", info)
	}

	rng := rand.New(rand.NewPCG(1, 2))
	params, ts := testQueries(16, rng)
	want := expectedFields(t, sur, cfg.MaxBatch, params, ts)
	var field []float32
	for round := 0; round < 2; round++ { // second round must be all cache hits
		for q := range params {
			var epoch uint32
			field, epoch, err = c.PredictInto(field, params[q], ts[q])
			if err != nil {
				t.Fatalf("round %d query %d: %v", round, q, err)
			}
			if epoch != 1 {
				t.Fatalf("round %d query %d: epoch %d, want 1", round, q, epoch)
			}
			if !bitsEqual(field, want[q]) {
				t.Fatalf("round %d query %d: served field diverges from reference", round, q)
			}
		}
	}
	if st := s.Stats(); st.Hits < uint64(len(params)) {
		t.Fatalf("stats %+v: want at least %d cache hits", st, len(params))
	}

	// Wrong parameter count → PredictError, connection stays usable.
	if _, _, err := c.Predict([]float32{1, 2}, 1); err == nil {
		t.Fatal("malformed query accepted")
	}
	if _, _, err = c.Predict(params[0], ts[0]); err != nil {
		t.Fatalf("connection unusable after rejection: %v", err)
	}
	if st := s.Stats(); st.Errors == 0 {
		t.Fatalf("stats %+v: rejection not counted", st)
	}
}

// TestServeBatchesCoalesce: concurrent closed-loop clients must actually be
// micro-batched — with the workers outnumbered by clients, the mean batch
// size has to rise above one request per forward pass.
func TestServeBatchesCoalesce(t *testing.T) {
	sur := testSurrogate(t, 43)
	s := NewServer(sur, Config{MaxBatch: 16, Replicas: 1, BatchWait: 2 * time.Millisecond})
	addr := startServer(t, s)

	const clients, each = 8, 50
	var wg sync.WaitGroup
	rng := rand.New(rand.NewPCG(5, 6))
	params, ts := testQueries(clients, rng)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.DialPredict(addr, 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			var field []float32
			for i := 0; i < each; i++ {
				if field, _, err = c.PredictInto(field, params[g], ts[g]); err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.BatchRows != clients*each {
		t.Fatalf("stats %+v: served %d rows, want %d", st, st.BatchRows, clients*each)
	}
	if st.Batches == 0 || float64(st.BatchRows)/float64(st.Batches) <= 1.0 {
		t.Fatalf("stats %+v: no coalescing (%d rows in %d batches)", st, st.BatchRows, st.Batches)
	}
}

// TestServeReloadUnderLoad is the hot-reload torture test (run under
// -race): clients hammer the server while the checkpoint is repeatedly
// hot-swapped between two models. Every request must get exactly one
// response, and every response must be bit-identical to the answer of the
// single epoch it claims — old bits or new bits, never a torn mix — with
// the epoch's parity identifying which checkpoint produced it.
func TestServeReloadUnderLoad(t *testing.T) {
	surA := testSurrogate(t, 41) // epochs 1, 3, 5, ... (odd)
	surB := testSurrogate(t, 97) // epochs 2, 4, 6, ... (even)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.mlsg")
	pathB := filepath.Join(dir, "b.mlsg")
	if err := melissa.PublishSurrogate(surA, pathA); err != nil {
		t.Fatal(err)
	}
	if err := melissa.PublishSurrogate(surB, pathB); err != nil {
		t.Fatal(err)
	}

	cfg := Config{MaxBatch: 8, Replicas: 2, BatchWait: 200 * time.Microsecond, CacheEntries: 32}
	s := NewServer(surA, cfg)
	addr := startServer(t, s)

	rng := rand.New(rand.NewPCG(11, 13))
	params, ts := testQueries(24, rng)
	wantA := expectedFields(t, surA, cfg.MaxBatch, params, ts)
	wantB := expectedFields(t, surB, cfg.MaxBatch, params, ts)

	const clients, each = 4, 300
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.DialPredict(addr, 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			var field []float32
			for i := 0; i < each; i++ {
				q := (g*each + i) % len(params)
				var epoch uint32
				field, epoch, err = c.PredictInto(field, params[q], ts[q])
				if err != nil {
					t.Errorf("client %d request %d dropped: %v", g, i, err)
					return
				}
				want := wantA[q]
				if epoch%2 == 0 {
					want = wantB[q]
				}
				if !bitsEqual(field, want) {
					t.Errorf("client %d request %d: response torn or stale (epoch %d)", g, i, epoch)
					return
				}
			}
		}(g)
	}

	// Flip checkpoints as fast as the loader allows while the load runs.
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		for i := 0; ; i++ {
			path := pathB
			if i%2 == 1 {
				path = pathA
			}
			if _, err := s.Reload(path); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
			select {
			case <-time.After(2 * time.Millisecond):
			case <-s.done:
				return
			}
			if i > 0 && allDone(&wg) {
				return
			}
		}
	}()

	wg.Wait()
	<-reloadDone
	st := s.Stats()
	if st.Responses != clients*each {
		t.Fatalf("stats %+v: %d responses for %d requests", st, st.Responses, clients*each)
	}
	if st.Reloads < 2 {
		t.Fatalf("stats %+v: only %d reloads happened during the run", st, st.Reloads)
	}
}

// allDone reports whether wg's count reached zero without blocking.
func allDone(wg *sync.WaitGroup) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(time.Millisecond):
		return false
	}
}

// TestServeWatcherPicksUpPublish: a checkpoint atomically published over
// the watched path must be hot-loaded without any admin traffic.
func TestServeWatcherPicksUpPublish(t *testing.T) {
	surA := testSurrogate(t, 41)
	surB := testSurrogate(t, 97)
	dir := t.TempDir()
	path := filepath.Join(dir, "surrogate.mlsg")
	if err := melissa.PublishSurrogate(surA, path); err != nil {
		t.Fatal(err)
	}
	s := NewServer(surA, Config{CheckpointPath: path, WatchInterval: 5 * time.Millisecond})
	defer s.Close()
	time.Sleep(15 * time.Millisecond) // let the watcher record the initial file
	if err := melissa.PublishSurrogate(surB, path); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Epoch() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never reloaded (epoch %d)", s.Epoch())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeReloadRejectsIncompatible: a checkpoint with different
// dimensions must be refused, leaving the old model serving.
func TestServeReloadRejectsIncompatible(t *testing.T) {
	sur := testSurrogate(t, 41)
	cfg := melissa.DefaultConfig()
	cfg.GridN = 4 // different output dim
	cfg.StepsPerSim = 6
	cfg.Hidden = []int{8}
	norm := melissa.Heat().Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), 3)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	small, err := melissa.LoadSurrogateLegacy(&buf, cfg.GridN, cfg.StepsPerSim, cfg.Dt, cfg.Hidden, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "small.mlsg")
	if err := melissa.PublishSurrogate(small, path); err != nil {
		t.Fatal(err)
	}
	s := NewServer(sur, Config{})
	defer s.Close()
	if _, err := s.Reload(path); err == nil {
		t.Fatal("incompatible checkpoint accepted")
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch advanced to %d on failed reload", s.Epoch())
	}
}

// nopConn is a net.Conn that discards writes — the alloc gates below need
// the full response encode+enqueue+write path without a real socket.
type nopConn struct{ net.Conn }

func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

// flushConn spins until c's writer goroutine has drained the outbox, so
// every encode buffer is back on the freelist before the next measured run.
func flushConn(c *conn) {
	for c.queued.Load() != 0 {
		runtime.Gosched()
	}
}

// TestServeSteadyStateZeroAlloc gates the two steady-state request paths at
// zero heap allocations per request once buffers and pools are warm: the
// compute path (admit → batch → fused forward → encode) with the cache
// disabled, and the cache-hit path (admit → lookup → encode).
func TestServeSteadyStateZeroAlloc(t *testing.T) {
	sur := testSurrogate(t, 41)
	rng := rand.New(rand.NewPCG(17, 19))
	params, ts := testQueries(8, rng)

	t.Run("compute", func(t *testing.T) {
		s := NewServer(sur, Config{MaxBatch: 8, Replicas: 1, CacheEntries: 0})
		defer s.Close()
		c := s.newConn(nopConn{})
		defer c.shutdown()
		m := s.model.Load()
		batch := make([]*pending, len(params))
		var key []byte // worker-private key scratch, as in the worker loop
		run := func() {
			// Build the batch the way admit would, then serve it on this
			// goroutine — the worker loop is just these two calls.
			for i := range batch {
				req := leaseRequest(params[i], ts[i])
				batch[i] = s.leasePending(c, req, time.Time{})
			}
			key = s.serveBatch(m, batch, key)
			flushConn(c)
		}
		for i := 0; i < 4; i++ {
			run()
		}
		if avg := testing.AllocsPerRun(100, run); avg != 0 {
			t.Errorf("compute path allocates %.2f allocs per batch, want 0", avg)
		}
	})

	t.Run("cache-hit", func(t *testing.T) {
		s := NewServer(sur, Config{MaxBatch: 8, Replicas: 1, CacheEntries: 64})
		defer s.Close()
		c := s.newConn(nopConn{})
		defer c.shutdown()
		m := s.model.Load()
		// Warm the cache through the real compute path.
		batch := make([]*pending, len(params))
		for i := range batch {
			batch[i] = s.leasePending(c, leaseRequest(params[i], ts[i]), time.Time{})
		}
		s.serveBatch(m, batch, nil)
		hit := func() {
			for i := range params {
				req := leaseRequest(params[i], ts[i])
				s.admit(c, req, time.Now()) // all hits: answered inline, nothing queued
			}
			flushConn(c)
		}
		for i := 0; i < 4; i++ {
			hit()
		}
		if avg := testing.AllocsPerRun(100, hit); avg != 0 {
			t.Errorf("cache-hit path allocates %.2f allocs per %d requests, want 0", avg, len(params))
		}
		hits, misses, _, _ := s.cache.counters()
		if misses != 0 || hits == 0 {
			t.Fatalf("gate did not stay on the hit path: %d hits, %d misses", hits, misses)
		}
	})
}

// leaseRequest builds a leased PredictRequest the way the wire reader does.
func leaseRequest(params []float32, t float32) *protocol.PredictRequest {
	req := protocol.LeasePredictRequest()
	req.ID = 1
	req.T = t
	req.Params = append(req.Params[:0], params...)
	return req
}

// TestServeCacheFlushOnReload: after a reload, previously cached answers
// must be recomputed by the new model, not served stale.
func TestServeCacheFlushOnReload(t *testing.T) {
	surA := testSurrogate(t, 41)
	surB := testSurrogate(t, 97)
	path := filepath.Join(t.TempDir(), "b.mlsg")
	if err := melissa.PublishSurrogate(surB, path); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxBatch: 4, Replicas: 1, CacheEntries: 16}
	s := NewServer(surA, cfg)
	addr := startServer(t, s)
	c, err := client.DialPredict(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewPCG(23, 29))
	params, ts := testQueries(4, rng)
	wantB := expectedFields(t, surB, cfg.MaxBatch, params, ts)
	for q := range params { // populate the cache with epoch-1 answers
		if _, _, err := c.Predict(params[q], ts[q]); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := c.Reload(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("reload returned epoch %d, want 2", epoch)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("cache holds %d entries after reload, want 0", n)
	}
	for q := range params {
		field, epoch, err := c.Predict(params[q], ts[q])
		if err != nil {
			t.Fatal(err)
		}
		if epoch != 2 || !bitsEqual(field, wantB[q]) {
			t.Fatalf("query %d after reload: stale answer (epoch %d)", q, epoch)
		}
	}
}

// TestPredictRemote covers the one-shot convenience wrapper.
func TestPredictRemote(t *testing.T) {
	sur := testSurrogate(t, 41)
	s := NewServer(sur, Config{})
	addr := startServer(t, s)
	rng := rand.New(rand.NewPCG(31, 37))
	params, ts := testQueries(1, rng)
	field, err := client.PredictRemote(addr, params[0], ts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(field) != sur.OutputDim() {
		t.Fatalf("field length %d, want %d", len(field), sur.OutputDim())
	}
	var nonzero bool
	for _, v := range field {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("all-zero prediction")
	}
}
