// Package serve implements the surrogate prediction service behind
// melissa-serve: it loads a trained surrogate checkpoint and answers
// PredictRequest frames over the training stack's wire protocol.
//
// The request path is built from three pieces. Adaptive micro-batching:
// connection readers admit requests into one queue, and batch workers
// coalesce whatever is in flight into a single fused-GEMM replica call — a
// batch closes when it reaches the size cap or when the oldest request has
// waited Config.BatchWait, whichever comes first, so the batch size adapts
// to the offered load (full batches at saturation, single-request batches
// with one BatchWait of added latency when idle). A replica pool: each
// worker evaluates on a melissa.Replica sharing the one weight slab, so N
// workers scale across cores without N copies of the model. A prediction
// cache: an LRU keyed on the exact query bits answers repeated queries
// without touching a replica (replicas pin their GEMM shape, so a cached
// field is bit-identical to a recomputed one).
//
// Checkpoints hot-reload without dropping requests: a reload builds a fresh
// model (surrogate + replica pool) and publishes it with one atomic pointer
// swap, tagged with a new epoch. In-flight batches finish on the model they
// started with — every response is computed entirely by one epoch's
// weights, never a torn mix — and the cache is flushed so stale fields are
// never served. Reloads trigger from an admin Reload frame or from watching
// the checkpoint file for a new atomic publish (melissa.PublishSurrogate).
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"melissa"
	"melissa/internal/protocol"
)

// Config tunes a Server. The zero value of any field selects its default.
type Config struct {
	// CheckpointPath is the checkpoint file re-read by Reload requests with
	// an empty path and by the file watcher. Optional if neither is used.
	CheckpointPath string
	// Replicas is the number of batch workers, each with a private
	// inference replica sharing the model's weight slab. Default 2.
	Replicas int
	// MaxBatch caps how many requests one worker coalesces into a fused
	// forward pass (and fixes the replicas' GEMM shape). Default 32.
	MaxBatch int
	// BatchWait is the micro-batching latency budget: how long an admitted
	// request may wait for companions before its batch closes regardless of
	// size. This is the knob that trades tail latency for batching
	// efficiency. Default 500µs; negative disables waiting (every batch
	// closes as soon as the queue drains).
	BatchWait time.Duration
	// CacheEntries bounds the prediction cache; 0 disables it (a negative
	// value also disables it).
	CacheEntries int
	// CacheKeepEpochs keeps prediction-cache entries across hot reloads:
	// instead of flushing, a reload lets entries serve until they fall more
	// than this many epochs behind the current checkpoint (then they expire
	// lazily on lookup). This deliberately serves slightly-stale fields —
	// consecutive training checkpoints are close — in exchange for a cache
	// that stays warm through frequent publishes. 0 (the default) flushes
	// the whole cache on every reload.
	CacheKeepEpochs int
	// CacheTTL expires prediction-cache entries this long after insert,
	// regardless of epoch; they count as expired misses on lookup. 0
	// disables the TTL.
	CacheTTL time.Duration
	// WatchInterval is how often the checkpoint file is polled for a new
	// publish; 0 disables watching.
	WatchInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWait == 0 {
		c.BatchWait = 500 * time.Microsecond
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.CacheKeepEpochs < 0 {
		c.CacheKeepEpochs = 0
	}
	if c.CacheTTL < 0 {
		c.CacheTTL = 0
	}
	return c
}

// model is one immutable checkpoint generation: the surrogate, its epoch
// tag, and a freelist of shape-pinned replicas. Workers hold the model
// pointer for the duration of a batch, so a reload (which swaps the
// server's pointer) never changes the weights under a running batch.
type model struct {
	sur      *melissa.Surrogate
	epoch    uint32
	maxBatch int
	replicas chan *melissa.Replica
}

func newModel(sur *melissa.Surrogate, epoch uint32, maxBatch, replicas int) *model {
	return &model{sur: sur, epoch: epoch, maxBatch: maxBatch, replicas: make(chan *melissa.Replica, replicas)}
}

func (m *model) lease() *melissa.Replica {
	select {
	case r := <-m.replicas:
		return r
	default:
		return m.sur.NewReplica(m.maxBatch)
	}
}

func (m *model) recycle(r *melissa.Replica) {
	select {
	case m.replicas <- r:
	default:
	}
}

// pending is one admitted request waiting for a batch: the leased wire
// message and the connection to answer on. Recycled through a freelist so
// the steady-state admit path does not allocate.
type pending struct {
	c   *conn
	req *protocol.PredictRequest
}

// Stats is a snapshot of the server's monotonic counters.
type Stats struct {
	Requests  uint64 // predict requests admitted
	Responses uint64 // predict responses sent (computed + cached)
	Batches   uint64 // fused forward passes
	BatchRows uint64 // total requests served by those passes
	Hits      uint64 // cache hits
	Misses    uint64 // cache misses (expired lookups included)
	Evictions uint64 // cache capacity evictions
	Expired   uint64 // cache misses on lazily evicted stale entries
	Errors    uint64 // rejected requests (PredictError sent)
	Reloads   uint64 // successful hot reloads
	Epoch     uint32 // current checkpoint epoch
}

// Server answers predict requests for one surrogate model. Create with
// NewServer, then either drive Serve with a listener or (in tests) admit
// requests directly.
type Server struct {
	cfg   Config
	model atomic.Pointer[model]
	cache *predictCache
	queue chan *pending
	free  chan *pending

	reloadMu sync.Mutex // serializes reloads; epoch advances under it
	done     chan struct{}
	closing  atomic.Bool
	wg       sync.WaitGroup
	ln       net.Listener
	lnMu     sync.Mutex
	connMu   sync.Mutex // guards conns; track checks closing under it
	conns    map[net.Conn]struct{}

	requests, responses, batches, batchRows, errors, reloads atomic.Uint64
}

// NewServer wraps a loaded surrogate in a serving instance and starts its
// batch workers (and the checkpoint watcher, if configured).
func NewServer(sur *melissa.Surrogate, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newPredictCache(cfg.CacheEntries, cfg.CacheKeepEpochs, cfg.CacheTTL),
		queue: make(chan *pending, 4*cfg.Replicas*cfg.MaxBatch),
		free:  make(chan *pending, 4*cfg.Replicas*cfg.MaxBatch),
		done:  make(chan struct{}),
	}
	s.model.Store(newModel(sur, 1, cfg.MaxBatch, cfg.Replicas))
	for i := 0; i < cfg.Replicas; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.WatchInterval > 0 && cfg.CheckpointPath != "" {
		s.wg.Add(1)
		go s.watch()
	}
	return s
}

// LoadServer loads the self-describing checkpoint at cfg.CheckpointPath and
// serves it.
func LoadServer(cfg Config) (*Server, error) {
	if cfg.CheckpointPath == "" {
		return nil, errors.New("serve: no checkpoint path configured")
	}
	sur, err := melissa.LoadSurrogateFile(cfg.CheckpointPath)
	if err != nil {
		return nil, err
	}
	return NewServer(sur, cfg), nil
}

// Epoch returns the current checkpoint epoch (1 for the initial model,
// advancing by one per successful reload).
func (s *Server) Epoch() uint32 { return s.model.Load().epoch }

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	hits, misses, evictions, expired := s.cache.counters()
	return Stats{
		Requests:  s.requests.Load(),
		Responses: s.responses.Load(),
		Batches:   s.batches.Load(),
		BatchRows: s.batchRows.Load(),
		Hits:      hits,
		Misses:    misses,
		Evictions: evictions,
		Expired:   expired,
		Errors:    s.errors.Load(),
		Reloads:   s.reloads.Load(),
		Epoch:     s.Epoch(),
	}
}

// Serve accepts connections on ln until Close. It returns nil after Close,
// or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

// ListenAndServe listens on addr (TCP) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address, once Serve has one.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every open connection (unblocking their
// reader goroutines), stops the workers and watcher, and waits for all of
// them to drain. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closing.CompareAndSwap(false, true) {
		return nil
	}
	close(s.done)
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Closing the sockets is what unblocks handlers parked in rd.Next();
	// track() refuses new registrations once closing is set, so no handler
	// can slip in behind this sweep.
	s.connMu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers an accepted connection for Close's teardown sweep. It
// refuses (and the caller must drop the conn) if the server is already
// closing: closing is set before Close takes connMu, so a track that wins
// the lock first is seen by Close's sweep, and one that loses sees closing.
func (s *Server) track(nc net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closing.Load() {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.connMu.Lock()
	delete(s.conns, nc)
	s.connMu.Unlock()
}

// Reload hot-swaps the served checkpoint: load the file at path (empty =
// the configured checkpoint path), verify it is shape-compatible with the
// running model, and publish it under the next epoch. In-flight batches
// finish on the old model; the prediction cache flushes (or, with
// CacheKeepEpochs, ages toward lazy expiry). Returns the epoch now serving.
func (s *Server) Reload(path string) (uint32, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if path == "" {
		path = s.cfg.CheckpointPath
		if path == "" {
			return s.Epoch(), errors.New("serve: no checkpoint path configured")
		}
	}
	sur, err := melissa.LoadSurrogateFile(path)
	if err != nil {
		return s.Epoch(), err
	}
	old := s.model.Load()
	if sur.ParamDim() != old.sur.ParamDim() || sur.OutputDim() != old.sur.OutputDim() {
		return old.epoch, fmt.Errorf("serve: checkpoint shape %d->%d incompatible with serving model %d->%d",
			sur.ParamDim(), sur.OutputDim(), old.sur.ParamDim(), old.sur.OutputDim())
	}
	next := newModel(sur, old.epoch+1, s.cfg.MaxBatch, s.cfg.Replicas)
	s.model.Store(next)
	// Raise the cache floor after the swap: an in-flight batch still running
	// on the old model carries an older epoch tag, so its puts are dropped
	// below the floor rather than repopulating the cache with stale fields.
	// With CacheKeepEpochs the floor trails the new epoch by the keep window
	// and surviving entries expire lazily; otherwise the whole cache flushes.
	if s.cfg.CacheKeepEpochs > 0 {
		s.cache.advanceEpoch(next.epoch)
	} else {
		s.cache.flush(next.epoch)
	}
	s.reloads.Add(1)
	return next.epoch, nil
}

// watch polls the checkpoint file and reloads when a new version is
// published (atomic rename → a new mtime/size/inode is one poll away).
func (s *Server) watch() {
	defer s.wg.Done()
	last, _ := statSig(s.cfg.CheckpointPath)
	ticker := time.NewTicker(s.cfg.WatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			sig, err := statSig(s.cfg.CheckpointPath)
			if err != nil || sig == last {
				continue
			}
			if _, err := s.Reload(""); err == nil {
				last = sig
			}
		}
	}
}

// statSig condenses a file's identity into a comparable signature.
func statSig(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d/%d", fi.Size(), fi.ModTime().UnixNano()), nil
}

// worker drains the admit queue: it blocks for the first pending request,
// keeps the batch open until the size cap or the BatchWait deadline, then
// runs the fused forward pass on a leased replica and answers every
// request. One worker per configured replica.
func (s *Server) worker() {
	defer s.wg.Done()
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var key []byte // worker-private cache key scratch
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.done:
			return
		}
		batch = append(batch[:0], first)
		m := s.model.Load()
		s.fillBatch(&batch, m.maxBatch, timer)
		key = s.serveBatch(m, batch, key)
	}
}

// fillBatch grows *batch from the queue until the size cap or the deadline.
// The non-blocking drain runs first so a backlogged queue closes batches at
// the cap without ever arming the timer.
func (s *Server) fillBatch(batch *[]*pending, cap int, timer *time.Timer) {
	b := *batch
	defer func() { *batch = b }()
	for len(b) < cap {
		select {
		case p := <-s.queue:
			b = append(b, p)
			continue
		default:
		}
		break
	}
	if len(b) >= cap || s.cfg.BatchWait <= 0 {
		return
	}
	timer.Reset(s.cfg.BatchWait)
	for len(b) < cap {
		select {
		case p := <-s.queue:
			b = append(b, p)
		case <-timer.C:
			return
		case <-s.done:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
	if !timer.Stop() {
		<-timer.C
	}
}

// serveBatch evaluates one batch on m and answers every request. The batch
// runs entirely on m's weights — reloads swap the server's model pointer
// but cannot touch a model a worker already holds. key is the calling
// worker's private cache-key scratch (never a conn's keyBuf, which belongs
// to that conn's reader goroutine); the grown slice is returned for reuse.
func (s *Server) serveBatch(m *model, batch []*pending, key []byte) []byte {
	rep := m.lease()
	err := rep.PredictBatchRaw(len(batch),
		func(i int) ([]float32, float32) { return batch[i].req.Params, batch[i].req.T },
		func(i int, field []float32) {
			p := batch[i]
			if s.cache != nil {
				key = appendKey(key[:0], p.req.Params, p.req.T)
				s.cache.put(key, m.epoch, field)
			}
			p.c.sendResponse(p.req.ID, m.epoch, field)
			s.responses.Add(1)
		})
	if err != nil {
		// Unreachable in normal operation: admit validated every request
		// against a shape-compatible model. Reject the whole batch.
		for _, p := range batch {
			p.c.sendError(p.req.ID, err.Error())
			s.errors.Add(1)
		}
	}
	m.recycle(rep)
	s.batches.Add(1)
	s.batchRows.Add(uint64(len(batch)))
	for _, p := range batch {
		s.recyclePending(p)
	}
	return key
}

func (s *Server) leasePending(c *conn, req *protocol.PredictRequest) *pending {
	select {
	case p := <-s.free:
		p.c, p.req = c, req
		return p
	default:
		return &pending{c: c, req: req}
	}
}

func (s *Server) recyclePending(p *pending) {
	protocol.RecyclePredictRequest(p.req)
	p.c, p.req = nil, nil
	select {
	case s.free <- p:
	default:
	}
}

// admit takes ownership of a leased request: answer from the cache, reject
// a malformed query, or queue it for a batch worker. Runs on the
// connection's reader goroutine, so cache hits never cross a goroutine
// boundary.
func (s *Server) admit(c *conn, req *protocol.PredictRequest) {
	s.requests.Add(1)
	m := s.model.Load()
	if len(req.Params) != m.sur.ParamDim() {
		c.sendError(req.ID, "bad parameter count")
		s.errors.Add(1)
		protocol.RecyclePredictRequest(req)
		return
	}
	if s.cache != nil {
		c.keyBuf = appendKey(c.keyBuf[:0], req.Params, req.T)
		if field, epoch := s.cache.get(c.keyBuf, c.fieldBuf); field != nil {
			c.fieldBuf = field
			c.sendResponse(req.ID, epoch, field)
			s.responses.Add(1)
			protocol.RecyclePredictRequest(req)
			return
		}
	}
	select {
	case s.queue <- s.leasePending(c, req):
	case <-s.done:
		protocol.RecyclePredictRequest(req)
	}
}

// conn is one client connection: the socket, a reusable encode buffer
// guarded by mu (batch workers and the reader goroutine both answer on it),
// and reader-goroutine-private cache scratch.
type conn struct {
	nc   net.Conn
	mu   sync.Mutex
	buf  []byte
	resp protocol.PredictResponse // persistent response header: encoding
	// through a pointer keeps the per-response interface boxing off the heap

	keyBuf   []byte    // cache key scratch (reader goroutine only)
	fieldBuf []float32 // cache hit copy-out scratch (reader goroutine only)
}

// send encodes and writes one frame. Errors are ignored: a dead connection
// surfaces in the reader goroutine, which owns teardown.
func (c *conn) send(msg protocol.Message) {
	c.mu.Lock()
	c.buf = protocol.AppendEncode(c.buf[:0], msg)
	c.nc.Write(c.buf)
	c.mu.Unlock()
}

// sendResponse writes a PredictResponse without copying the field: the
// frame is encoded under the connection lock straight from the caller's
// buffer into the connection's reusable encode buffer.
func (c *conn) sendResponse(id uint64, epoch uint32, field []float32) {
	c.mu.Lock()
	c.resp.ID, c.resp.Epoch, c.resp.Field = id, epoch, field
	c.buf = protocol.AppendEncode(c.buf[:0], &c.resp)
	c.resp.Field = nil // don't pin the caller's buffer past the call
	c.nc.Write(c.buf)
	c.mu.Unlock()
}

func (c *conn) sendError(id uint64, msg string) {
	c.send(protocol.PredictError{ID: id, Msg: msg})
}

// handleConn reads frames until the client hangs up, says Goodbye, or the
// server closes the socket during Close.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	defer nc.Close()
	if !s.track(nc) {
		return
	}
	defer s.untrack(nc)
	c := &conn{nc: nc}
	rd := protocol.NewReader(bufio.NewReaderSize(nc, 1<<15))
	for {
		select {
		case <-s.done:
			return
		default:
		}
		msg, err := rd.Next()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *protocol.PredictRequest:
			s.admit(c, m)
		case protocol.ServeInfoRequest:
			mod := s.model.Load()
			c.send(protocol.ServeInfo{
				Problem:   mod.sur.Meta().Problem,
				ParamDim:  uint32(mod.sur.ParamDim()),
				OutputDim: uint32(mod.sur.OutputDim()),
				Epoch:     mod.epoch,
			})
		case protocol.Reload:
			epoch, err := s.Reload(m.Path)
			res := protocol.ReloadResult{Epoch: epoch}
			if err != nil {
				res.Msg = err.Error()
			}
			c.send(res)
		case protocol.Goodbye:
			return
		default:
			// Unexpected but decodable frame (e.g. a training client
			// connected here by mistake): drop it, keep the connection.
			if ts, ok := msg.(*protocol.TimeStep); ok {
				protocol.RecycleTimeStep(ts)
			}
		}
	}
}
