// Package serve implements the surrogate prediction service behind
// melissa-serve: it loads a trained surrogate checkpoint and answers
// PredictRequest frames over the training stack's wire protocol.
//
// The request path is built from three pieces. Adaptive micro-batching:
// connection readers admit requests into one queue, and batch workers
// coalesce whatever is in flight into a single fused-GEMM replica call — a
// batch closes when it reaches the size cap or when the oldest request has
// waited Config.BatchWait, whichever comes first, so the batch size adapts
// to the offered load (full batches at saturation, single-request batches
// with one BatchWait of added latency when idle). A replica pool: each
// worker evaluates on a melissa.Replica sharing the one weight slab, so N
// workers scale across cores without N copies of the model. A prediction
// cache: an LRU keyed on the exact query bits answers repeated queries
// without touching a replica (replicas pin their GEMM shape, so a cached
// field is bit-identical to a recomputed one).
//
// Checkpoints hot-reload without dropping requests: a reload builds a fresh
// model (surrogate + replica pool) and publishes it with one atomic pointer
// swap, tagged with a new epoch. In-flight batches finish on the model they
// started with — every response is computed entirely by one epoch's
// weights, never a torn mix — and the cache is flushed so stale fields are
// never served. Reloads trigger from an admin Reload frame or from watching
// the checkpoint file for a new atomic publish (melissa.PublishSurrogate).
//
// Overload and misbehaving clients degrade the service predictably rather
// than collectively. Admission never blocks: when the queue is at capacity
// the request is shed with a typed overloaded error and a retry-after hint
// instead of stalling the connection's reader. Requests may carry a
// relative deadline (PredictRequest.DeadlineMs); one that expires while
// queued is rejected at batch assembly, never computed. Each connection's
// write side is owned by a dedicated writer goroutine draining a bounded
// outbox of pre-encoded frames, so batch workers never touch a socket; a
// client that stops reading (outbox overflow or write-deadline expiry) has
// only its own connection torn down. Drain stops admission and completes
// the work already accepted before closing.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"melissa"
	"melissa/internal/protocol"
)

// Config tunes a Server. The zero value of any field selects its default.
type Config struct {
	// CheckpointPath is the checkpoint file re-read by Reload requests with
	// an empty path and by the file watcher. Optional if neither is used.
	CheckpointPath string
	// Replicas is the number of batch workers, each with a private
	// inference replica sharing the model's weight slab. Default 2.
	Replicas int
	// MaxBatch caps how many requests one worker coalesces into a fused
	// forward pass (and fixes the replicas' GEMM shape). Default 32.
	MaxBatch int
	// BatchWait is the micro-batching latency budget: how long an admitted
	// request may wait for companions before its batch closes regardless of
	// size. This is the knob that trades tail latency for batching
	// efficiency. Default 500µs; negative disables waiting (every batch
	// closes as soon as the queue drains).
	BatchWait time.Duration
	// QueueSize bounds the admit queue and is therefore the load-shedding
	// threshold: a request arriving with the queue full is answered
	// immediately with an overloaded error instead of waiting. Default
	// 4*Replicas*MaxBatch.
	QueueSize int
	// WriteTimeout bounds each response-frame write to a client socket.
	// A write that outlives it marks the client slow and tears down that
	// one connection. Default 5s; negative disables the deadline.
	WriteTimeout time.Duration
	// OutboxFrames bounds each connection's response outbox — frames
	// encoded but not yet written by the connection's writer goroutine.
	// Overflow means the client is not draining responses, and tears the
	// connection down. Default max(64, 4*MaxBatch).
	OutboxFrames int
	// CacheEntries bounds the prediction cache; 0 disables it (a negative
	// value also disables it).
	CacheEntries int
	// CacheKeepEpochs keeps prediction-cache entries across hot reloads:
	// instead of flushing, a reload lets entries serve until they fall more
	// than this many epochs behind the current checkpoint (then they expire
	// lazily on lookup). This deliberately serves slightly-stale fields —
	// consecutive training checkpoints are close — in exchange for a cache
	// that stays warm through frequent publishes. 0 (the default) flushes
	// the whole cache on every reload.
	CacheKeepEpochs int
	// CacheTTL expires prediction-cache entries this long after insert,
	// regardless of epoch; they count as expired misses on lookup. 0
	// disables the TTL.
	CacheTTL time.Duration
	// WatchInterval is how often the checkpoint file is polled for a new
	// publish; 0 disables watching.
	WatchInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWait == 0 {
		c.BatchWait = 500 * time.Microsecond
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4 * c.Replicas * c.MaxBatch
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
	if c.OutboxFrames <= 0 {
		c.OutboxFrames = 4 * c.MaxBatch
		if c.OutboxFrames < 64 {
			c.OutboxFrames = 64
		}
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.CacheKeepEpochs < 0 {
		c.CacheKeepEpochs = 0
	}
	if c.CacheTTL < 0 {
		c.CacheTTL = 0
	}
	return c
}

// model is one immutable checkpoint generation: the surrogate, its epoch
// tag, and a freelist of shape-pinned replicas. Workers hold the model
// pointer for the duration of a batch, so a reload (which swaps the
// server's pointer) never changes the weights under a running batch.
type model struct {
	sur      *melissa.Surrogate
	epoch    uint32
	maxBatch int
	replicas chan *melissa.Replica
}

func newModel(sur *melissa.Surrogate, epoch uint32, maxBatch, replicas int) *model {
	return &model{sur: sur, epoch: epoch, maxBatch: maxBatch, replicas: make(chan *melissa.Replica, replicas)}
}

func (m *model) lease() *melissa.Replica {
	select {
	case r := <-m.replicas:
		return r
	default:
		return m.sur.NewReplica(m.maxBatch)
	}
}

func (m *model) recycle(r *melissa.Replica) {
	select {
	case m.replicas <- r:
	default:
	}
}

// pending is one admitted request waiting for a batch: the leased wire
// message, the connection to answer on, and the request's deadline (zero =
// none). Recycled through a freelist so the steady-state admit path does
// not allocate.
type pending struct {
	c       *conn
	req     *protocol.PredictRequest
	expires time.Time
}

// Drain outcome values reported in Stats.Drain.
const (
	DrainNone   uint32 = iota // Drain has not been called
	DrainActive               // drain in progress
	DrainClean                // all admitted work was answered and flushed before close
	DrainForced               // the drain context expired; Close cut off remaining work
)

// Stats is a snapshot of the server's monotonic counters (plus the
// instantaneous queue depth and drain state).
type Stats struct {
	Requests  uint64 // predict requests received
	Responses uint64 // predict responses sent (computed + cached)
	Batches   uint64 // fused forward passes
	BatchRows uint64 // total requests served by those passes
	Hits      uint64 // cache hits
	Misses    uint64 // cache misses (expired lookups included)
	Evictions uint64 // cache capacity evictions
	Expired   uint64 // cache misses on lazily evicted stale entries
	Errors    uint64 // rejected requests (PredictError sent)
	Reloads   uint64 // successful hot reloads
	Epoch     uint32 // current checkpoint epoch

	Shed            uint64 // requests rejected with queue full or server draining
	DeadlineExpired uint64 // requests rejected for an elapsed deadline (admit or batch assembly)
	SlowClients     uint64 // connections torn down for not draining responses
	SendErrors      uint64 // connections torn down by a failed response write
	Queue           int    // current admit-queue depth
	QueueCap        int    // admit-queue capacity (the shed threshold)
	Drain           uint32 // DrainNone / DrainActive / DrainClean / DrainForced
}

// Server answers predict requests for one surrogate model. Create with
// NewServer, then either drive Serve with a listener or (in tests) admit
// requests directly.
type Server struct {
	cfg   Config
	model atomic.Pointer[model]
	cache *predictCache
	queue chan *pending
	free  chan *pending

	reloadMu sync.Mutex // serializes reloads; epoch advances under it
	done     chan struct{}
	closing  atomic.Bool
	draining atomic.Bool
	drain    atomic.Uint32 // DrainNone/DrainActive/DrainClean/DrainForced
	inflight atomic.Int64  // admitted requests not yet answered (or shed)
	wg       sync.WaitGroup
	ln       net.Listener
	lnMu     sync.Mutex
	connMu   sync.Mutex // guards conns; track checks closing under it
	conns    map[*conn]struct{}

	requests, responses, batches, batchRows, errors, reloads atomic.Uint64
	shed, deadlineExpired, slowClients, sendErrors           atomic.Uint64
}

// NewServer wraps a loaded surrogate in a serving instance and starts its
// batch workers (and the checkpoint watcher, if configured).
func NewServer(sur *melissa.Surrogate, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newPredictCache(cfg.CacheEntries, cfg.CacheKeepEpochs, cfg.CacheTTL),
		queue: make(chan *pending, cfg.QueueSize),
		free:  make(chan *pending, cfg.QueueSize),
		done:  make(chan struct{}),
	}
	s.model.Store(newModel(sur, 1, cfg.MaxBatch, cfg.Replicas))
	for i := 0; i < cfg.Replicas; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.WatchInterval > 0 && cfg.CheckpointPath != "" {
		s.wg.Add(1)
		go s.watch()
	}
	return s
}

// LoadServer loads the self-describing checkpoint at cfg.CheckpointPath and
// serves it.
func LoadServer(cfg Config) (*Server, error) {
	if cfg.CheckpointPath == "" {
		return nil, errors.New("serve: no checkpoint path configured")
	}
	sur, err := melissa.LoadSurrogateFile(cfg.CheckpointPath)
	if err != nil {
		return nil, err
	}
	return NewServer(sur, cfg), nil
}

// Epoch returns the current checkpoint epoch (1 for the initial model,
// advancing by one per successful reload).
func (s *Server) Epoch() uint32 { return s.model.Load().epoch }

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	hits, misses, evictions, expired := s.cache.counters()
	return Stats{
		Requests:  s.requests.Load(),
		Responses: s.responses.Load(),
		Batches:   s.batches.Load(),
		BatchRows: s.batchRows.Load(),
		Hits:      hits,
		Misses:    misses,
		Evictions: evictions,
		Expired:   expired,
		Errors:    s.errors.Load(),
		Reloads:   s.reloads.Load(),
		Epoch:     s.Epoch(),

		Shed:            s.shed.Load(),
		DeadlineExpired: s.deadlineExpired.Load(),
		SlowClients:     s.slowClients.Load(),
		SendErrors:      s.sendErrors.Load(),
		Queue:           len(s.queue),
		QueueCap:        cap(s.queue),
		Drain:           s.drain.Load(),
	}
}

// Serve accepts connections on ln until Close or Drain. It returns nil
// after either, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closing.Load() || s.draining.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

// ListenAndServe listens on addr (TCP) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address, once Serve has one.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every open connection (unblocking their
// reader goroutines), stops the workers and watcher, and waits for all of
// them to drain. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closing.CompareAndSwap(false, true) {
		return nil
	}
	close(s.done)
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Closing the sockets is what unblocks handlers parked in rd.Next();
	// track() refuses new registrations once closing is set, so no handler
	// can slip in behind this sweep.
	s.connMu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return nil
}

// Drain gracefully shuts the server down: stop accepting connections, shed
// every request that arrives from now on (typed draining error), finish
// the work already admitted, flush every connection's outbox to its
// socket, then Close. It returns nil on a clean drain. If ctx expires
// first the drain is forced — Close cuts off whatever remains — and
// ctx.Err() is returned. The outcome is recorded in Stats.Drain. Only the
// first call drains; later calls return an error without waiting.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("serve: already draining")
	}
	s.drain.Store(DrainActive)
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	clean := s.awaitQuiescent(ctx)
	if clean {
		s.drain.Store(DrainClean)
	} else {
		s.drain.Store(DrainForced)
	}
	s.Close()
	if !clean {
		return ctx.Err()
	}
	return nil
}

// awaitQuiescent polls until every admitted request has been answered and
// every connection's outbox has reached its socket, or ctx expires.
func (s *Server) awaitQuiescent(ctx context.Context) bool {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 && len(s.queue) == 0 && s.flushed() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-tick.C:
		}
	}
}

// flushed reports whether every tracked connection's outbox is empty and
// its writer is not mid-frame.
func (s *Server) flushed() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for c := range s.conns {
		if c.queued.Load() > 0 {
			return false
		}
	}
	return true
}

// track registers an accepted connection for Close's teardown sweep. It
// refuses (and the caller must drop the conn) if the server is already
// closing: closing is set before Close takes connMu, so a track that wins
// the lock first is seen by Close's sweep, and one that loses sees closing.
func (s *Server) track(c *conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closing.Load() {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[*conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c *conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// Reload hot-swaps the served checkpoint: load the file at path (empty =
// the configured checkpoint path), verify it is shape-compatible with the
// running model, and publish it under the next epoch. In-flight batches
// finish on the old model; the prediction cache flushes (or, with
// CacheKeepEpochs, ages toward lazy expiry). Returns the epoch now serving.
func (s *Server) Reload(path string) (uint32, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if path == "" {
		path = s.cfg.CheckpointPath
		if path == "" {
			return s.Epoch(), errors.New("serve: no checkpoint path configured")
		}
	}
	sur, err := melissa.LoadSurrogateFile(path)
	if err != nil {
		return s.Epoch(), err
	}
	old := s.model.Load()
	if sur.ParamDim() != old.sur.ParamDim() || sur.OutputDim() != old.sur.OutputDim() {
		return old.epoch, fmt.Errorf("serve: checkpoint shape %d->%d incompatible with serving model %d->%d",
			sur.ParamDim(), sur.OutputDim(), old.sur.ParamDim(), old.sur.OutputDim())
	}
	next := newModel(sur, old.epoch+1, s.cfg.MaxBatch, s.cfg.Replicas)
	s.model.Store(next)
	// Raise the cache floor after the swap: an in-flight batch still running
	// on the old model carries an older epoch tag, so its puts are dropped
	// below the floor rather than repopulating the cache with stale fields.
	// With CacheKeepEpochs the floor trails the new epoch by the keep window
	// and surviving entries expire lazily; otherwise the whole cache flushes.
	if s.cfg.CacheKeepEpochs > 0 {
		s.cache.advanceEpoch(next.epoch)
	} else {
		s.cache.flush(next.epoch)
	}
	s.reloads.Add(1)
	return next.epoch, nil
}

// watch polls the checkpoint file and reloads when a new version is
// published (atomic rename → a new mtime/size/inode is one poll away).
func (s *Server) watch() {
	defer s.wg.Done()
	last, _ := statSig(s.cfg.CheckpointPath)
	ticker := time.NewTicker(s.cfg.WatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			sig, err := statSig(s.cfg.CheckpointPath)
			if err != nil || sig == last {
				continue
			}
			if _, err := s.Reload(""); err == nil {
				last = sig
			}
		}
	}
}

// statSig condenses a file's identity into a comparable signature.
func statSig(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d/%d", fi.Size(), fi.ModTime().UnixNano()), nil
}

// worker drains the admit queue: it blocks for the first pending request,
// keeps the batch open until the size cap or the BatchWait deadline, then
// runs the fused forward pass on a leased replica and answers every
// request. One worker per configured replica.
func (s *Server) worker() {
	defer s.wg.Done()
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var key []byte // worker-private cache key scratch
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.done:
			return
		}
		batch = append(batch[:0], first)
		m := s.model.Load()
		s.fillBatch(&batch, m.maxBatch, timer)
		key = s.serveBatch(m, batch, key)
	}
}

// fillBatch grows *batch from the queue until the size cap or the deadline.
// The non-blocking drain runs first so a backlogged queue closes batches at
// the cap without ever arming the timer.
func (s *Server) fillBatch(batch *[]*pending, cap int, timer *time.Timer) {
	b := *batch
	defer func() { *batch = b }()
	for len(b) < cap {
		select {
		case p := <-s.queue:
			b = append(b, p)
			continue
		default:
		}
		break
	}
	if len(b) >= cap || s.cfg.BatchWait <= 0 {
		return
	}
	timer.Reset(s.cfg.BatchWait)
	for len(b) < cap {
		select {
		case p := <-s.queue:
			b = append(b, p)
		case <-timer.C:
			return
		case <-s.done:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
	if !timer.Stop() {
		<-timer.C
	}
}

// serveBatch evaluates one batch on m and answers every request. The batch
// runs entirely on m's weights — reloads swap the server's model pointer
// but cannot touch a model a worker already holds. key is the calling
// worker's private cache-key scratch (never a conn's keyBuf, which belongs
// to that conn's reader goroutine); the grown slice is returned for reuse.
func (s *Server) serveBatch(m *model, batch []*pending, key []byte) []byte {
	// Deadline sweep at batch assembly: a request whose budget elapsed
	// while it sat in the queue is rejected here, never computed, so under
	// overload GEMM time goes only to callers still waiting.
	now := time.Now()
	live := batch[:0]
	for _, p := range batch {
		if !p.expires.IsZero() && now.After(p.expires) {
			s.deadlineExpired.Add(1)
			s.errors.Add(1)
			p.c.sendError(p.req.ID, protocol.PredictErrExpired, "deadline exceeded", 0)
			s.finishPending(p)
			continue
		}
		live = append(live, p)
	}
	batch = live
	if len(batch) == 0 {
		return key
	}
	rep := m.lease()
	err := rep.PredictBatchRaw(len(batch),
		func(i int) ([]float32, float32) { return batch[i].req.Params, batch[i].req.T },
		func(i int, field []float32) {
			p := batch[i]
			if s.cache != nil {
				key = appendKey(key[:0], p.req.Params, p.req.T)
				s.cache.put(key, m.epoch, field)
			}
			p.c.sendResponse(p.req.ID, m.epoch, field)
			s.responses.Add(1)
		})
	if err != nil {
		// Unreachable in normal operation: admit validated every request
		// against a shape-compatible model. Reject the whole batch.
		for _, p := range batch {
			p.c.sendError(p.req.ID, protocol.PredictErrGeneric, err.Error(), 0)
			s.errors.Add(1)
		}
	}
	m.recycle(rep)
	s.batches.Add(1)
	s.batchRows.Add(uint64(len(batch)))
	for _, p := range batch {
		s.finishPending(p)
	}
	return key
}

func (s *Server) leasePending(c *conn, req *protocol.PredictRequest, expires time.Time) *pending {
	select {
	case p := <-s.free:
		p.c, p.req, p.expires = c, req, expires
		return p
	default:
		return &pending{c: c, req: req, expires: expires}
	}
}

func (s *Server) recyclePending(p *pending) {
	protocol.RecyclePredictRequest(p.req)
	p.c, p.req, p.expires = nil, nil, time.Time{}
	select {
	case s.free <- p:
	default:
	}
}

// finishPending retires a pending that went through the admit queue:
// recycle it and release its slot in the drain gate.
func (s *Server) finishPending(p *pending) {
	s.recyclePending(p)
	s.inflight.Add(-1)
}

// retryAfterHintMs estimates when a shed client should try again: a full
// queue drains at roughly Replicas*MaxBatch requests per BatchWait.
func (s *Server) retryAfterHintMs() uint32 {
	wait := s.cfg.BatchWait
	if wait <= 0 {
		wait = time.Millisecond
	}
	rounds := 1 + len(s.queue)/(s.cfg.Replicas*s.cfg.MaxBatch)
	ms := (time.Duration(rounds) * wait).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > 60_000 {
		ms = 60_000
	}
	return uint32(ms)
}

// admit takes ownership of a leased request: answer from the cache, reject
// a malformed/expired/shed query, or queue it for a batch worker — never
// blocking, so one overloaded queue cannot stall a connection's reader.
// now is when the frame was received; a DeadlineMs budget counts from it.
// Runs on the connection's reader goroutine, so cache hits never cross a
// goroutine boundary.
func (s *Server) admit(c *conn, req *protocol.PredictRequest, now time.Time) {
	s.requests.Add(1)
	if s.draining.Load() {
		s.shed.Add(1)
		s.errors.Add(1)
		c.sendError(req.ID, protocol.PredictErrDraining, "server draining", 0)
		protocol.RecyclePredictRequest(req)
		return
	}
	m := s.model.Load()
	if len(req.Params) != m.sur.ParamDim() {
		s.errors.Add(1)
		c.sendError(req.ID, protocol.PredictErrGeneric, "bad parameter count", 0)
		protocol.RecyclePredictRequest(req)
		return
	}
	var expires time.Time
	if req.DeadlineMs > 0 {
		expires = now.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
		if time.Now().After(expires) {
			s.deadlineExpired.Add(1)
			s.errors.Add(1)
			c.sendError(req.ID, protocol.PredictErrExpired, "deadline exceeded", 0)
			protocol.RecyclePredictRequest(req)
			return
		}
	}
	if s.cache != nil {
		c.keyBuf = appendKey(c.keyBuf[:0], req.Params, req.T)
		if field, epoch := s.cache.get(c.keyBuf, c.fieldBuf); field != nil {
			c.fieldBuf = field
			c.sendResponse(req.ID, epoch, field)
			s.responses.Add(1)
			protocol.RecyclePredictRequest(req)
			return
		}
	}
	p := s.leasePending(c, req, expires)
	select {
	case s.queue <- p:
		s.inflight.Add(1)
	default:
		// Queue full: shed now with a hint instead of stalling the reader.
		s.shed.Add(1)
		s.errors.Add(1)
		c.sendError(req.ID, protocol.PredictErrOverloaded, "server overloaded", s.retryAfterHintMs())
		s.recyclePending(p)
	}
}

// conn is one client connection. The reader goroutine decodes frames and
// admits requests; a dedicated writer goroutine owns the socket's write
// side, draining a bounded outbox of pre-encoded frames — batch workers
// enqueue and move on, never touching the socket. A client that stops
// draining responses (outbox overflow, or a frame write outliving
// WriteTimeout) has only its own connection torn down.
type conn struct {
	nc net.Conn
	s  *Server

	mu   sync.Mutex               // guards resp staging during encode
	resp protocol.PredictResponse // persistent response header: encoding
	// through a pointer keeps the per-response interface boxing off the heap

	outbox chan []byte   // encoded frames awaiting the writer
	obFree chan []byte   // encode-buffer freelist; keeps the send path alloc-free
	queued atomic.Int64  // frames enqueued but not yet on the socket (drain gate)
	dead   atomic.Bool   // set once; no further sends, socket closed
	quit   chan struct{} // reader closed: writer flushes the outbox and exits
	wdone  chan struct{} // writer exited

	keyBuf   []byte    // cache key scratch (reader goroutine only)
	fieldBuf []float32 // cache hit copy-out scratch (reader goroutine only)
}

// newConn wraps an accepted socket and starts its writer goroutine. Every
// conn must be retired with shutdown (directly or via handleConn's defers)
// or its writer leaks.
func (s *Server) newConn(nc net.Conn) *conn {
	c := &conn{
		nc:     nc,
		s:      s,
		outbox: make(chan []byte, s.cfg.OutboxFrames),
		obFree: make(chan []byte, s.cfg.OutboxFrames+4),
		quit:   make(chan struct{}),
		wdone:  make(chan struct{}),
	}
	s.wg.Add(1)
	go c.writer()
	return c
}

// teardown reasons for die.
type teardownReason int

const (
	reasonQuiet    teardownReason = iota // orderly close; no counter
	reasonSlow                           // outbox overflow or write deadline: client not draining
	reasonWriteErr                       // hard write error (reset, short write)
)

// die marks the connection dead exactly once and closes the socket, which
// unblocks both the reader (rd.Next) and the writer (nc.Write). Safe from
// any goroutine.
func (c *conn) die(why teardownReason) {
	if !c.dead.CompareAndSwap(false, true) {
		return
	}
	switch why {
	case reasonSlow:
		c.s.slowClients.Add(1)
	case reasonWriteErr:
		c.s.sendErrors.Add(1)
	}
	c.nc.Close()
}

// shutdown ends the connection from the reader's side: stop the writer —
// flushing whatever is already queued — then close the socket.
func (c *conn) shutdown() {
	close(c.quit)
	<-c.wdone
	c.die(reasonQuiet)
}

// writer drains the outbox onto the socket. On quit it flushes what is
// already queued, then exits; a write failure kills the connection but the
// writer keeps draining (and discarding) so enqueuers are never stuck.
func (c *conn) writer() {
	defer c.s.wg.Done()
	defer close(c.wdone)
	for {
		select {
		case buf := <-c.outbox:
			c.writeFrame(buf)
		case <-c.quit:
			for {
				select {
				case buf := <-c.outbox:
					c.writeFrame(buf)
				default:
					return
				}
			}
		}
	}
}

// writeFrame writes one encoded frame under the configured write deadline
// and recycles its buffer. A deadline expiry is a slow client; any other
// failure is a send error. Either way only this connection dies.
func (c *conn) writeFrame(buf []byte) {
	defer c.queued.Add(-1)
	if c.dead.Load() {
		c.recycleBuf(buf)
		return
	}
	if to := c.s.cfg.WriteTimeout; to > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(to))
	}
	n, err := c.nc.Write(buf)
	c.recycleBuf(buf)
	if err == nil && n == len(buf) {
		return
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		c.die(reasonSlow)
	} else {
		c.die(reasonWriteErr)
	}
}

// leaseBuf takes an encode buffer from the freelist (or nil, growing a new
// one on first use); recycleBuf returns it. The freelist outsizes the
// outbox so a steady-state connection circulates a fixed set of buffers.
func (c *conn) leaseBuf() []byte {
	select {
	case buf := <-c.obFree:
		return buf
	default:
		return nil
	}
}

func (c *conn) recycleBuf(buf []byte) {
	select {
	case c.obFree <- buf:
	default:
	}
}

// enqueue hands one encoded frame to the writer without ever blocking. An
// outbox at capacity means the client is not reading its responses: the
// connection is torn down as slow rather than letting it wedge a worker.
func (c *conn) enqueue(buf []byte) {
	c.queued.Add(1)
	select {
	case c.outbox <- buf:
	default:
		c.queued.Add(-1)
		c.recycleBuf(buf)
		c.die(reasonSlow)
	}
}

// send encodes and enqueues one frame; drops it if the connection is
// already dead.
func (c *conn) send(msg protocol.Message) {
	if c.dead.Load() {
		return
	}
	buf := protocol.AppendEncode(c.leaseBuf()[:0], msg)
	c.enqueue(buf)
}

// sendResponse stages a PredictResponse without copying the field: the
// frame is encoded straight from the caller's buffer into a leased encode
// buffer (the persistent resp header is guarded by mu — workers and the
// reader goroutine all answer on it).
func (c *conn) sendResponse(id uint64, epoch uint32, field []float32) {
	if c.dead.Load() {
		return
	}
	c.mu.Lock()
	c.resp.ID, c.resp.Epoch, c.resp.Field = id, epoch, field
	buf := protocol.AppendEncode(c.leaseBuf()[:0], &c.resp)
	c.resp.Field = nil // don't pin the caller's buffer past the call
	c.mu.Unlock()
	c.enqueue(buf)
}

func (c *conn) sendError(id uint64, code uint32, msg string, retryAfterMs uint32) {
	c.send(protocol.PredictError{ID: id, Msg: msg, Code: code, RetryAfterMs: retryAfterMs})
}

func b32(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

// handleConn reads frames until the client hangs up, says Goodbye, or the
// server closes the socket during Close.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	c := s.newConn(nc)
	if !s.track(c) {
		c.shutdown()
		return
	}
	defer s.untrack(c)
	defer c.shutdown()
	rd := protocol.NewReader(bufio.NewReaderSize(nc, 1<<15))
	for {
		select {
		case <-s.done:
			return
		default:
		}
		msg, err := rd.Next()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *protocol.PredictRequest:
			s.admit(c, m, time.Now())
		case protocol.ServeInfoRequest:
			mod := s.model.Load()
			c.send(protocol.ServeInfo{
				Problem:     mod.sur.Meta().Problem,
				ParamDim:    uint32(mod.sur.ParamDim()),
				OutputDim:   uint32(mod.sur.OutputDim()),
				Epoch:       mod.epoch,
				Queue:       uint32(len(s.queue)),
				QueueCap:    uint32(cap(s.queue)),
				Shed:        s.shed.Load(),
				Expired:     s.deadlineExpired.Load(),
				SlowClients: s.slowClients.Load(),
				Draining:    b32(s.draining.Load()),
			})
		case protocol.Reload:
			epoch, err := s.Reload(m.Path)
			res := protocol.ReloadResult{Epoch: epoch}
			if err != nil {
				res.Msg = err.Error()
			}
			c.send(res)
		case protocol.Goodbye:
			return
		default:
			// Unexpected but decodable frame (e.g. a training client
			// connected here by mistake): drop it, keep the connection.
			if ts, ok := msg.(*protocol.TimeStep); ok {
				protocol.RecycleTimeStep(ts)
			}
		}
	}
}
