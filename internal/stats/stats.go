// Package stats provides the small statistical helpers the experiment
// harness uses: integer histograms (Figure 3), running summaries, and
// series utilities (decimation for printable traces).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences of integer values.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]int)} }

// Add increments the count for v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// AddN increments the count for v by n.
func (h *Histogram) AddN(v, n int) {
	h.counts[v] += n
	h.total += n
}

// Count returns the count for v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of added values.
func (h *Histogram) Total() int { return h.total }

// Max returns the largest value with a nonzero count, 0 when empty.
func (h *Histogram) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Keys returns the values with nonzero counts in ascending order.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	return keys
}

// Mean returns the count-weighted mean value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// String renders "v:count" pairs in ascending value order.
func (h *Histogram) String() string {
	s := ""
	for _, v := range h.Keys() {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", v, h.counts[v])
	}
	return s
}

// Summary accumulates min/max/mean/std online (Welford).
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds v into the summary.
func (s *Summary) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the number of samples.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest value seen.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest value seen.
func (s *Summary) Max() float64 { return s.max }

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Decimate reduces xs/ys to at most n points by uniform index striding,
// keeping the first and last points — used to print readable traces.
func Decimate(xs, ys []float64, n int) (dx, dy []float64) {
	if len(xs) != len(ys) {
		panic("stats: Decimate length mismatch")
	}
	if n < 2 || len(xs) <= n {
		return xs, ys
	}
	stride := float64(len(xs)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * stride))
		dx = append(dx, xs[idx])
		dy = append(dy, ys[idx])
	}
	return dx, dy
}
