package stats

import (
	"math"
	"testing"
)

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.AddN(8, 2)
	if h.Count(1) != 2 || h.Count(3) != 1 || h.Count(8) != 2 || h.Count(5) != 0 {
		t.Fatalf("counts wrong: %s", h)
	}
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Max() != 8 {
		t.Fatalf("max %d", h.Max())
	}
	keys := h.Keys()
	want := []int{1, 3, 8}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v", keys)
		}
	}
	// mean = (1*2 + 3*1 + 8*2)/5 = 21/5
	if math.Abs(h.Mean()-4.2) > 1e-12 {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.String() != "1:2 3:1 8:2" {
		t.Fatalf("string %q", h.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Max() != 0 || h.Total() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std()-2.13809) > 1e-4 {
		t.Fatalf("std %v", s.Std())
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Std() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-value summary wrong")
	}
}

func TestDecimate(t *testing.T) {
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i * i)
	}
	dx, dy := Decimate(xs, ys, 5)
	if len(dx) != 5 || len(dy) != 5 {
		t.Fatalf("lengths %d/%d", len(dx), len(dy))
	}
	if dx[0] != 0 || dx[4] != 99 {
		t.Fatalf("endpoints not kept: %v", dx)
	}
	// Short series are returned unchanged.
	sx, sy := Decimate(xs[:3], ys[:3], 5)
	if len(sx) != 3 || len(sy) != 3 {
		t.Fatal("short series modified")
	}
}

func TestDecimateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decimate(make([]float64, 3), make([]float64, 4), 2)
}
