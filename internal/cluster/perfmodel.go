// Package cluster models the Jean-Zay hardware the paper evaluates on
// (§4.2): solver time per step as a function of core count, GPU batch
// compute time, ring all-reduce cost across GPUs, and the parallel
// filesystem feeding the offline baseline. The constants are calibrated
// against the paper's reported figures (see DESIGN.md §7); the cluster
// simulator charges these durations to its virtual clock while executing
// the real buffer and scheduler algorithms, so the *shapes* of the timing
// results emerge from the algorithms rather than being scripted.
package cluster

// PerfModel holds the calibrated machine constants.
type PerfModel struct {
	// SolverCoreSecPerStep is W: the core-seconds one solver time step
	// costs at the paper's 1000×1000 grid. 20 cores → ~0.9 s/step, which
	// places the series transitions of Figure 2 near 100 s and 200 s.
	SolverCoreSecPerStep float64
	// SolverOverheadPerCore is o in eff(p) = 1/(1+o·p), the parallel
	// efficiency loss of the MPI solver.
	SolverOverheadPerCore float64

	// GPUBatchSec is the forward+backward time of one batch of 10 samples
	// on a V100 for the 514M-parameter MLP. Reservoir at 1 GPU sustains
	// 147.6 samples/s (Table 1) → ≈ 67.7 ms per batch.
	GPUBatchSec float64
	// GradBytes is the gradient volume all-reduced per step (514M × 4 B).
	GradBytes float64
	// AllReduceBW is the effective NVLink ring bandwidth.
	AllReduceBW float64
	// AllReduceLatencySec is the per-hop launch latency.
	AllReduceLatencySec float64

	// SampleBytes is one training sample on the wire / on disk
	// (1000×1000 float32 ≈ 4 MB).
	SampleBytes float64
	// DiskSharedBW is the parallel-filesystem read bandwidth shared by all
	// dataloader workers; it caps the offline pipeline at ≈ 38 samples/s
	// with 4 GPUs (Table 2).
	DiskSharedBW float64
	// WorkerStreamBW is the per-dataloader-worker effective read rate
	// (syscall + page-cache + copy path); 8 workers per GPU at ≈ 6.6 MB/s
	// reproduce the 13.2 samples/s single-GPU offline rate (Table 1).
	WorkerStreamBW float64
	// LoaderWorkersPerGPU matches the paper's Dataloader setting (§4.6).
	LoaderWorkersPerGPU int
	// DiskWriteBW is the shared write bandwidth used when generating
	// offline datasets (Table 1/2 "Generation" column).
	DiskWriteBW float64

	// LauncherSubmitSec is the per-job submission overhead, and
	// SeriesGapSec the idle gap between client series (the dips of
	// Figure 2).
	LauncherSubmitSec float64
	SeriesGapSec      float64
}

// JeanZay returns the calibrated model (DESIGN.md §7 records the
// derivation of each constant from the paper's reported numbers).
func JeanZay() PerfModel {
	return PerfModel{
		SolverCoreSecPerStep:  18.0,
		SolverOverheadPerCore: 0.002,

		GPUBatchSec:         0.0677,
		GradBytes:           514e6 * 4,
		AllReduceBW:         216e9, // ring term B/bw ≈ 9.5 ms
		AllReduceLatencySec: 0.0005,

		SampleBytes:         4e6,
		DiskSharedBW:        153e6,
		WorkerStreamBW:      6.6e6,
		LoaderWorkersPerGPU: 8,
		DiskWriteBW:         880e6,

		LauncherSubmitSec: 0.05,
		SeriesGapSec:      10,
	}
}

// SolverStepSec returns the wall-clock seconds one solver step takes on the
// given core count: W/p scaled by the parallel efficiency 1/(1+o·p).
func (m PerfModel) SolverStepSec(cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	p := float64(cores)
	return m.SolverCoreSecPerStep / p * (1 + m.SolverOverheadPerCore*p)
}

// SimulationSec returns the wall-clock seconds a full client run takes.
func (m PerfModel) SimulationSec(cores, steps int) float64 {
	return m.SolverStepSec(cores) * float64(steps)
}

// AllReduceSec returns the ring all-reduce time across n GPUs:
// 2(n−1)/n · B/bw + n·latency; zero for a single GPU.
func (m PerfModel) AllReduceSec(n int) float64 {
	if n <= 1 {
		return 0
	}
	ring := 2 * float64(n-1) / float64(n) * m.GradBytes / m.AllReduceBW
	return ring + float64(n)*m.AllReduceLatencySec
}

// TrainStepSec returns the duration of one synchronized data-parallel
// training step on n GPUs: local batch compute plus gradient all-reduce.
func (m PerfModel) TrainStepSec(n int) float64 {
	return m.GPUBatchSec + m.AllReduceSec(n)
}

// GPUBoundSamplesPerSec is the consumption capacity of n GPUs at the given
// per-GPU batch size, ignoring data starvation — the ceiling Reservoir
// training approaches in Table 1.
func (m PerfModel) GPUBoundSamplesPerSec(n, batch int) float64 {
	return float64(n*batch) / m.TrainStepSec(n)
}

// OfflineSamplesPerSec models the offline dataloader pipeline of §4.6: per
// GPU, LoaderWorkersPerGPU workers stream samples at WorkerStreamBW each,
// all contending for DiskSharedBW; the result is additionally capped by the
// GPUs' compute throughput.
func (m PerfModel) OfflineSamplesPerSec(nGPU, batch int) float64 {
	workers := float64(nGPU * m.LoaderWorkersPerGPU)
	perWorker := m.WorkerStreamBW
	if shared := m.DiskSharedBW / workers; shared < perWorker {
		perWorker = shared
	}
	loaderBound := workers * perWorker / m.SampleBytes
	gpuBound := m.GPUBoundSamplesPerSec(nGPU, batch)
	if gpuBound < loaderBound {
		return gpuBound
	}
	return loaderBound
}

// GenerationSec returns the wall-clock seconds to generate an ensemble of
// sims simulations (steps each, coresPerSim cores) on totalCores, writing
// the produced bytes to the shared filesystem — the offline "Generation"
// column of Tables 1 and 2.
func (m PerfModel) GenerationSec(sims, steps, coresPerSim, totalCores int, writeBytes float64) float64 {
	concurrent := totalCores / coresPerSim
	if concurrent < 1 {
		concurrent = 1
	}
	waves := (sims + concurrent - 1) / concurrent
	compute := float64(waves) * m.SimulationSec(coresPerSim, steps)
	write := writeBytes / m.DiskWriteBW
	return compute + write
}
