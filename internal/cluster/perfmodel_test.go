package cluster

import (
	"math"
	"testing"
)

// The calibration tests pin the model to the paper's reported figures
// (Table 1, Table 2, Figure 2); see DESIGN.md §7.

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*want {
		t.Fatalf("%s = %v, want %v ±%.0f%%", name, got, want, relTol*100)
	}
}

func TestSolverStepCalibration(t *testing.T) {
	m := JeanZay()
	// 20 cores → ≈0.9 s/step (Figure 2: 100-step sims in ≈90-100 s).
	within(t, "step(20 cores)", m.SolverStepSec(20), 0.94, 0.05)
	// A full 100-step simulation lands the Figure 2 series near 100 s.
	within(t, "sim(20 cores)", m.SimulationSec(20, 100), 94, 0.05)
	// Table 2: 20,000 sims at 10 cores on 5,120 cores ≈ 1.9-2.0 h total.
	sec := m.SimulationSec(10, 100) * 20000 / 512
	within(t, "table2 generation", sec/3600, 1.97, 0.08)
}

func TestSolverStepMonotonicity(t *testing.T) {
	m := JeanZay()
	prev := m.SolverStepSec(1)
	for cores := 2; cores <= 64; cores *= 2 {
		cur := m.SolverStepSec(cores)
		if cur >= prev {
			t.Fatalf("no speedup from %d cores: %v >= %v", cores, cur, prev)
		}
		prev = cur
	}
	if m.SolverStepSec(0) != m.SolverStepSec(1) {
		t.Fatal("0 cores should clamp to 1")
	}
}

func TestGPUThroughputCalibration(t *testing.T) {
	m := JeanZay()
	// Table 1 Reservoir rows: 147.6 / ~212-256 / ~476 samples/s.
	within(t, "1 GPU", m.GPUBoundSamplesPerSec(1, 10), 147.6, 0.03)
	within(t, "4 GPU", m.GPUBoundSamplesPerSec(4, 10), 476, 0.08)
	// Scaling must be sublinear (all-reduce cost) but substantial.
	r2 := m.GPUBoundSamplesPerSec(2, 10) / m.GPUBoundSamplesPerSec(1, 10)
	if r2 < 1.4 || r2 > 2.0 {
		t.Fatalf("2-GPU scaling %v outside (1.4, 2.0)", r2)
	}
	r4 := m.GPUBoundSamplesPerSec(4, 10) / m.GPUBoundSamplesPerSec(1, 10)
	if r4 < 2.8 || r4 > 4.0 {
		t.Fatalf("4-GPU scaling %v outside (2.8, 4.0)", r4)
	}
}

func TestAllReduce(t *testing.T) {
	m := JeanZay()
	if m.AllReduceSec(1) != 0 {
		t.Fatal("single GPU must not pay all-reduce")
	}
	// Cost grows with n for the ring model.
	if !(m.AllReduceSec(2) < m.AllReduceSec(4)) {
		t.Fatal("all-reduce cost must grow with GPU count")
	}
}

func TestOfflineThroughputCalibration(t *testing.T) {
	m := JeanZay()
	// Table 1 offline rows: 13.2 (1 GPU), 43.2→ (4 GPU, Table 2 reports
	// 38.2 for the large run); the loader, not the GPU, must bind.
	within(t, "offline 1 GPU", m.OfflineSamplesPerSec(1, 10), 13.2, 0.05)
	within(t, "offline 4 GPU", m.OfflineSamplesPerSec(4, 10), 38.2, 0.10)
	for _, n := range []int{1, 2, 4} {
		if m.OfflineSamplesPerSec(n, 10) >= m.GPUBoundSamplesPerSec(n, 10) {
			t.Fatalf("offline at %d GPUs not I/O bound", n)
		}
	}
}

func TestOnlineVsOfflineRatio(t *testing.T) {
	m := JeanZay()
	// Table 2 headline: online throughput ≈ 13× offline at 4 GPUs.
	ratio := m.GPUBoundSamplesPerSec(4, 10) / m.OfflineSamplesPerSec(4, 10)
	if ratio < 10 || ratio > 16 {
		t.Fatalf("online/offline ratio %v outside [10,16] (paper ≈ 12.5)", ratio)
	}
}

func TestGenerationCalibration(t *testing.T) {
	m := JeanZay()
	// Table 1: 250 sims × 100 steps, 20 cores each, 2,000 cores, 450 GB
	// written → ≈ 0.22 h.
	sec := m.GenerationSec(250, 100, 20, 2000, 450e9)
	within(t, "offline generation", sec/3600, 0.22, 0.15)
}

func TestGenerationWaves(t *testing.T) {
	m := JeanZay()
	// More total cores → fewer waves → faster generation.
	slow := m.GenerationSec(100, 100, 20, 400, 0)
	fast := m.GenerationSec(100, 100, 20, 2000, 0)
	if fast >= slow {
		t.Fatalf("generation did not speed up with cores: %v vs %v", fast, slow)
	}
	// Exactly ceil(sims/concurrent) waves of compute when no write cost.
	got := m.GenerationSec(5, 100, 20, 40, 0) // 2 concurrent → 3 waves
	want := 3 * m.SimulationSec(20, 100)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("waves: got %v want %v", got, want)
	}
}
