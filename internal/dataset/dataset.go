// Package dataset implements the offline training baseline of §4.6: the
// ensemble data is written to disk as one binary file per simulation, read
// back with random access (the paper mmaps "to read only the requested
// time step without having to load the entire file in memory"), and served
// to the trainer by a multi-worker DataLoader that shuffles indices every
// epoch.
package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"melissa/internal/buffer"
)

const (
	fileMagic   = "MLDS"
	fileVersion = 1
)

// header layout after the magic: version u32 | simID u32 | steps u32 |
// inputDim u32 | fieldDim u32. Records follow: per step, inputDim f32 then
// fieldDim f32, fixed stride → O(1) seeks.
const headerSize = 4 + 5*4

// Writer streams one simulation into its file.
type Writer struct {
	f        *os.File
	w        *bufio.Writer
	simID    int
	steps    int
	inputDim int
	fieldDim int
	written  int
}

// Create opens the per-simulation file under dir.
func Create(dir string, simID, steps, inputDim, fieldDim int) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(FilePath(dir, simID))
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<20), simID: simID, steps: steps, inputDim: inputDim, fieldDim: fieldDim}
	if _, err := w.w.WriteString(fileMagic); err != nil {
		return nil, err
	}
	for _, v := range []uint32{fileVersion, uint32(simID), uint32(steps), uint32(inputDim), uint32(fieldDim)} {
		if err := binary.Write(w.w, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// FilePath returns the canonical file name for a simulation.
func FilePath(dir string, simID int) string {
	return filepath.Join(dir, fmt.Sprintf("sim-%06d.bin", simID))
}

// WriteStep appends one time step; steps must be written in order.
func (w *Writer) WriteStep(input, field []float32) error {
	if len(input) != w.inputDim || len(field) != w.fieldDim {
		return fmt.Errorf("dataset: step dims %d/%d, want %d/%d", len(input), len(field), w.inputDim, w.fieldDim)
	}
	if w.written >= w.steps {
		return fmt.Errorf("dataset: sim %d already has %d steps", w.simID, w.steps)
	}
	if err := writeF32s(w.w, input); err != nil {
		return err
	}
	if err := writeF32s(w.w, field); err != nil {
		return err
	}
	w.written++
	return nil
}

// Close flushes and closes the file, verifying completeness.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if w.written != w.steps {
		return fmt.Errorf("dataset: sim %d wrote %d/%d steps", w.simID, w.written, w.steps)
	}
	return nil
}

// Reader provides random access to one simulation file.
type Reader struct {
	f        *os.File
	SimID    int
	Steps    int
	InputDim int
	FieldDim int
	stride   int64
}

// Open validates the header and prepares for seeks.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: reading header of %s: %w", path, err)
	}
	if string(head[:4]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("dataset: %s: bad magic", path)
	}
	u32 := func(i int) uint32 { return binary.LittleEndian.Uint32(head[4+4*i:]) }
	if u32(0) != fileVersion {
		f.Close()
		return nil, fmt.Errorf("dataset: %s: unsupported version %d", path, u32(0))
	}
	r := &Reader{
		f:        f,
		SimID:    int(u32(1)),
		Steps:    int(u32(2)),
		InputDim: int(u32(3)),
		FieldDim: int(u32(4)),
	}
	r.stride = int64(4 * (r.InputDim + r.FieldDim))
	// Completeness check against the file size.
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := int64(headerSize) + int64(r.Steps)*r.stride; info.Size() != want {
		f.Close()
		return nil, fmt.Errorf("dataset: %s: size %d, want %d (truncated?)", path, info.Size(), want)
	}
	return r, nil
}

// ReadStep reads the (1-based) step without touching the rest of the file.
func (r *Reader) ReadStep(step int) (buffer.Sample, error) {
	if step < 1 || step > r.Steps {
		return buffer.Sample{}, fmt.Errorf("dataset: step %d outside [1,%d]", step, r.Steps)
	}
	buf := make([]byte, r.stride)
	off := int64(headerSize) + int64(step-1)*r.stride
	if _, err := r.f.ReadAt(buf, off); err != nil {
		return buffer.Sample{}, err
	}
	s := buffer.Sample{SimID: r.SimID, Step: step}
	s.Input = decodeF32s(buf[:4*r.InputDim])
	s.Output = decodeF32s(buf[4*r.InputDim:])
	return s, nil
}

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }

// Dataset indexes every simulation file in a directory.
type Dataset struct {
	readers []*Reader
	index   []ref // flattened (reader, step) pairs
	bytes   int64
}

type ref struct {
	reader int
	step   int
}

// OpenDir opens every sim-*.bin under dir.
func OpenDir(dir string) (*Dataset, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "sim-*.bin"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("dataset: no simulation files under %s", dir)
	}
	sort.Strings(paths)
	d := &Dataset{}
	for _, p := range paths {
		r, err := Open(p)
		if err != nil {
			d.Close()
			return nil, err
		}
		info, err := os.Stat(p)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.bytes += info.Size()
		ri := len(d.readers)
		d.readers = append(d.readers, r)
		for s := 1; s <= r.Steps; s++ {
			d.index = append(d.index, ref{reader: ri, step: s})
		}
	}
	return d, nil
}

// Len returns the number of samples (time steps) in the dataset.
func (d *Dataset) Len() int { return len(d.index) }

// Bytes returns the on-disk dataset size (the paper reports 100 GB /
// 450 GB / 8 TB figures; ours scale with the grid).
func (d *Dataset) Bytes() int64 { return d.bytes }

// Sims returns the number of simulations.
func (d *Dataset) Sims() int { return len(d.readers) }

// Dims returns the per-sample input and field widths recorded in the file
// headers, so consumers can validate the dataset against their model
// before training on it.
func (d *Dataset) Dims() (inputDim, fieldDim int) {
	if len(d.readers) == 0 {
		return 0, 0
	}
	return d.readers[0].InputDim, d.readers[0].FieldDim
}

// Get reads sample i (0-based over the flattened index).
func (d *Dataset) Get(i int) (buffer.Sample, error) {
	if i < 0 || i >= len(d.index) {
		return buffer.Sample{}, fmt.Errorf("dataset: index %d outside [0,%d)", i, len(d.index))
	}
	ref := d.index[i]
	return d.readers[ref.reader].ReadStep(ref.step)
}

// Close closes every file.
func (d *Dataset) Close() error {
	var first error
	for _, r := range d.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func writeF32s(w io.Writer, vals []float32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func decodeF32s(buf []byte) []float32 {
	out := make([]float32, len(buf)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}
