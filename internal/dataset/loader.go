package dataset

import (
	"math/rand/v2"
	"sync"

	"melissa/internal/buffer"
)

// Loader serves shuffled batches for multi-epoch offline training, with
// parallel reader workers prefetching samples — the Go analogue of the
// paper's PyTorch DataLoader with 8 workers per GPU (§4.6). Prefetch depth
// is bounded, so epochs stream without materializing the dataset in memory.
type Loader struct {
	ds      *Dataset
	batch   int
	workers int
	rng     *rand.Rand
}

// NewLoader builds a loader. workers ≤ 0 defaults to 8, matching the paper.
func NewLoader(ds *Dataset, batchSize, workers int, seed uint64) *Loader {
	if workers <= 0 {
		workers = 8
	}
	if batchSize < 1 {
		batchSize = 1
	}
	return &Loader{
		ds:      ds,
		batch:   batchSize,
		workers: workers,
		rng:     rand.New(rand.NewPCG(seed, seed^0x1f83d9abfb41bd6b)),
	}
}

// BatchesPerEpoch returns the number of batches one epoch yields.
func (l *Loader) BatchesPerEpoch() int {
	return (l.ds.Len() + l.batch - 1) / l.batch
}

type loadItem struct {
	pos    int
	sample buffer.Sample
	err    error
}

// Epoch streams one full pass over the dataset in a fresh uniform shuffle
// (gradient descent "expects batches built by uniformly sampling the fixed
// dataset", §3.2.1), delivering batches to yield in shuffle order. Each
// sample appears exactly once per epoch. The first read or yield error
// aborts the epoch.
func (l *Loader) Epoch(yield func(batch []buffer.Sample) error) error {
	perm := l.rng.Perm(l.ds.Len())

	done := make(chan struct{})
	defer close(done)

	work := make(chan int)
	go func() {
		defer close(work)
		for i := range perm {
			select {
			case work <- i:
			case <-done:
				return
			}
		}
	}()

	out := make(chan loadItem, l.workers*l.batch)
	var wg sync.WaitGroup
	for w := 0; w < l.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s, err := l.ds.Get(perm[i])
				select {
				case out <- loadItem{pos: i, sample: s, err: err}:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Reorder completed reads back into shuffle order; the pending map is
	// bounded by the out-channel capacity plus the worker count.
	pending := make(map[int]loadItem)
	nextPos := 0
	batch := make([]buffer.Sample, 0, l.batch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		b := batch
		batch = make([]buffer.Sample, 0, l.batch)
		return yield(b)
	}
	for it := range out {
		pending[it.pos] = it
		for {
			cur, ok := pending[nextPos]
			if !ok {
				break
			}
			delete(pending, nextPos)
			nextPos++
			if cur.err != nil {
				return cur.err
			}
			batch = append(batch, cur.sample)
			if len(batch) == l.batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}
