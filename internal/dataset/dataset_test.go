package dataset

import (
	"errors"
	"os"
	"testing"

	"melissa/internal/buffer"
)

func writeTestSim(t *testing.T, dir string, simID, steps, inputDim, fieldDim int) {
	t.Helper()
	w, err := Create(dir, simID, steps, inputDim, fieldDim)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= steps; s++ {
		input := make([]float32, inputDim)
		field := make([]float32, fieldDim)
		for i := range input {
			input[i] = float32(simID*1000 + s*10 + i)
		}
		for i := range field {
			field[i] = float32(simID*100000 + s*100 + i)
		}
		if err := w.WriteStep(input, field); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	writeTestSim(t, dir, 3, 5, 2, 4)
	r, err := Open(FilePath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.SimID != 3 || r.Steps != 5 || r.InputDim != 2 || r.FieldDim != 4 {
		t.Fatalf("header %+v", r)
	}
	// Random access, out of order.
	for _, step := range []int{4, 1, 5, 2, 3} {
		s, err := r.ReadStep(step)
		if err != nil {
			t.Fatal(err)
		}
		if s.SimID != 3 || s.Step != step {
			t.Fatalf("sample %+v", s)
		}
		if s.Input[0] != float32(3000+step*10) || s.Output[2] != float32(300000+step*100+2) {
			t.Fatalf("payload mismatch: %+v", s)
		}
	}
}

func TestReadStepBounds(t *testing.T) {
	dir := t.TempDir()
	writeTestSim(t, dir, 0, 3, 1, 1)
	r, err := Open(FilePath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadStep(0); err == nil {
		t.Fatal("expected error for step 0")
	}
	if _, err := r.ReadStep(4); err == nil {
		t.Fatal("expected error for step past end")
	}
}

func TestWriterDimAndCountValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStep([]float32{1}, []float32{1, 2, 3}); err == nil {
		t.Fatal("expected dim error")
	}
	ok2 := []float32{1, 2}
	ok3 := []float32{1, 2, 3}
	if err := w.WriteStep(ok2, ok3); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStep(ok2, ok3); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStep(ok2, ok3); err == nil {
		t.Fatal("expected overflow error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDetectsIncomplete(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteStep([]float32{1}, []float32{1})
	if err := w.Close(); err == nil {
		t.Fatal("expected incompleteness error")
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	// Garbage magic.
	bad := FilePath(dir, 9)
	os.WriteFile(bad, []byte("garbage-file-contents........"), 0o644)
	if _, err := Open(bad); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncated payload.
	writeTestSim(t, dir, 1, 4, 2, 2)
	path := FilePath(dir, 1)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-4], 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestOpenDirIndexesEverything(t *testing.T) {
	dir := t.TempDir()
	for sim := 0; sim < 4; sim++ {
		writeTestSim(t, dir, sim, 6, 2, 3)
	}
	ds, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Len() != 24 || ds.Sims() != 4 {
		t.Fatalf("len %d sims %d", ds.Len(), ds.Sims())
	}
	if ds.Bytes() <= 0 {
		t.Fatal("byte size not recorded")
	}
	// Every index resolves and the (sim, step) pairs are all distinct.
	seen := map[buffer.Key]bool{}
	for i := 0; i < ds.Len(); i++ {
		s, err := ds.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Key()] {
			t.Fatalf("duplicate %v", s.Key())
		}
		seen[s.Key()] = true
	}
	if _, err := ds.Get(-1); err == nil {
		t.Fatal("expected bounds error")
	}
	if _, err := ds.Get(24); err == nil {
		t.Fatal("expected bounds error")
	}
}

func TestOpenDirEmpty(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("expected error for empty directory")
	}
}

func TestLoaderEpochCoversDatasetOnce(t *testing.T) {
	dir := t.TempDir()
	for sim := 0; sim < 3; sim++ {
		writeTestSim(t, dir, sim, 7, 2, 2)
	}
	ds, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	l := NewLoader(ds, 4, 3, 1)
	if l.BatchesPerEpoch() != 6 { // ceil(21/4)
		t.Fatalf("batches per epoch %d", l.BatchesPerEpoch())
	}
	counts := map[buffer.Key]int{}
	batches := 0
	err = l.Epoch(func(batch []buffer.Sample) error {
		batches++
		if len(batch) == 0 || len(batch) > 4 {
			t.Fatalf("batch size %d", len(batch))
		}
		for _, s := range batch {
			counts[s.Key()]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 6 {
		t.Fatalf("batches %d, want 6", batches)
	}
	if len(counts) != 21 {
		t.Fatalf("unique %d, want 21", len(counts))
	}
	for k, c := range counts {
		if c != 1 {
			t.Fatalf("sample %v appeared %d times in one epoch", k, c)
		}
	}
}

func TestLoaderShufflesBetweenEpochs(t *testing.T) {
	dir := t.TempDir()
	writeTestSim(t, dir, 0, 32, 1, 1)
	ds, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	l := NewLoader(ds, 32, 2, 7)
	order := func() []int {
		var steps []int
		l.Epoch(func(batch []buffer.Sample) error {
			for _, s := range batch {
				steps = append(steps, s.Step)
			}
			return nil
		})
		return steps
	}
	a, b := order(), order()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two epochs produced identical order; shuffle broken")
	}
}

func TestLoaderDeterministicWithSeed(t *testing.T) {
	dir := t.TempDir()
	writeTestSim(t, dir, 0, 16, 1, 1)
	ds, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	order := func(seed uint64) []int {
		l := NewLoader(ds, 4, 4, seed)
		var steps []int
		l.Epoch(func(batch []buffer.Sample) error {
			for _, s := range batch {
				steps = append(steps, s.Step)
			}
			return nil
		})
		return steps
	}
	a, b := order(11), order(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different epoch order")
		}
	}
}

func TestLoaderPropagatesYieldError(t *testing.T) {
	dir := t.TempDir()
	writeTestSim(t, dir, 0, 10, 1, 1)
	ds, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	sentinel := errors.New("stop")
	l := NewLoader(ds, 2, 2, 1)
	if err := l.Epoch(func([]buffer.Sample) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}
