package client

import (
	"context"
	"testing"
	"time"

	"melissa/internal/protocol"
	"melissa/internal/solver"
	"melissa/internal/transport"
)

// startRanks spins up n rank listeners and returns their addresses.
func startRanks(t *testing.T, n int) ([]*transport.RankListener, []string) {
	t.Helper()
	listeners := make([]*transport.RankListener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := transport.Listen("127.0.0.1:0", 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	return listeners, addrs
}

func TestRankRoundRobinOffsetByClientID(t *testing.T) {
	_, addrs := startRanks(t, 3)
	api, err := InitCommunication(Config{ClientID: 2, SimID: 2, ServerAddrs: addrs}, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer api.Abort()
	// §3.2.2: "The destination of the first time step is chosen according
	// to the client id".
	if got := api.Rank(1); got != (2+1)%3 {
		t.Fatalf("Rank(1) = %d", got)
	}
	if got := api.Rank(2); got != (2+2)%3 {
		t.Fatalf("Rank(2) = %d", got)
	}
	if api.Rank(1) == api.Rank(2) {
		t.Fatal("consecutive steps must hit different ranks")
	}
}

func TestInitSendsHelloToAllRanks(t *testing.T) {
	listeners, addrs := startRanks(t, 2)
	api, err := InitCommunication(Config{ClientID: 5, SimID: 5, Restart: 1, ServerAddrs: addrs}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer api.Abort()
	for r, l := range listeners {
		select {
		case env := <-l.Incoming():
			h, ok := env.Msg.(protocol.Hello)
			if !ok || h.ClientID != 5 || h.Steps != 7 || h.Restart != 1 {
				t.Fatalf("rank %d: %+v", r, env.Msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("rank %d never received hello", r)
		}
	}
}

func TestSendConvertsToFloat32(t *testing.T) {
	listeners, addrs := startRanks(t, 1)
	api, err := InitCommunication(Config{ClientID: 0, SimID: 0, ServerAddrs: addrs}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer api.Abort()
	<-listeners[0].Incoming() // hello
	if err := api.Send(1, []float64{1.5, 2.5}, []float64{3.25}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-listeners[0].Incoming():
		ts := env.Msg.(*protocol.TimeStep)
		if ts.Input[0] != 1.5 || ts.Input[1] != 2.5 || ts.Field[0] != 3.25 {
			t.Fatalf("payload %+v", ts)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("time step never arrived")
	}
}

func TestFinalizeSendsGoodbye(t *testing.T) {
	listeners, addrs := startRanks(t, 2)
	api, err := InitCommunication(Config{ClientID: 3, SimID: 3, ServerAddrs: addrs}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range listeners {
		<-l.Incoming() // hello
	}
	if err := api.FinalizeCommunication(); err != nil {
		t.Fatal(err)
	}
	for r, l := range listeners {
		select {
		case env := <-l.Incoming():
			if g, ok := env.Msg.(protocol.Goodbye); !ok || g.SimID != 3 {
				t.Fatalf("rank %d: %+v", r, env.Msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("rank %d never received goodbye", r)
		}
	}
}

func TestHeartbeatsFlow(t *testing.T) {
	listeners, addrs := startRanks(t, 1)
	api, err := InitCommunication(Config{
		ClientID: 1, SimID: 1, ServerAddrs: addrs,
		HeartbeatInterval: 10 * time.Millisecond,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer api.Abort()
	<-listeners[0].Incoming() // hello
	deadline := time.After(2 * time.Second)
	for {
		select {
		case env := <-listeners[0].Incoming():
			if hb, ok := env.Msg.(protocol.Heartbeat); ok {
				if hb.ClientID != 1 {
					t.Fatalf("heartbeat from %d", hb.ClientID)
				}
				return
			}
		case <-deadline:
			t.Fatal("no heartbeat within deadline")
		}
	}
}

func TestInitCommunicationDialFailure(t *testing.T) {
	_, err := InitCommunication(Config{ClientID: 0, ServerAddrs: []string{"127.0.0.1:1"}, DialTimeout: 100 * time.Millisecond}, 1)
	if err == nil {
		t.Fatal("expected dial error")
	}
}

func TestRunHeatStreamsTrajectory(t *testing.T) {
	listeners, addrs := startRanks(t, 1)
	received := make(chan protocol.Message, 64)
	go func() {
		for env := range listeners[0].Incoming() {
			received <- env.Msg
		}
	}()
	job := HeatJob{
		Client: Config{ClientID: 0, SimID: 0, ServerAddrs: addrs},
		Solver: solver.Config{N: 4, Steps: 5, Dt: 0.01},
		Params: solver.Params{TIC: 300, Tx1: 200, Ty1: 200, Tx2: 200, Ty2: 200},
	}
	if err := RunHeat(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	var steps, goodbyes int
	timeout := time.After(5 * time.Second)
	for steps+goodbyes < 6 {
		select {
		case msg := <-received:
			switch m := msg.(type) {
			case *protocol.TimeStep:
				steps++
				if len(m.Field) != 16 || len(m.Input) != 6 {
					t.Fatalf("dims %d/%d", len(m.Input), len(m.Field))
				}
				// Input carries raw params + physical time.
				if m.Input[0] != 300 || m.Input[5] != float32(float64(m.Step)*0.01) {
					t.Fatalf("input %v for step %d", m.Input, m.Step)
				}
			case protocol.Goodbye:
				goodbyes++
			}
		case <-timeout:
			t.Fatalf("received %d steps %d goodbyes", steps, goodbyes)
		}
	}
	if steps != 5 || goodbyes != 1 {
		t.Fatalf("steps %d goodbyes %d", steps, goodbyes)
	}
}

func TestRunHeatContextCancelled(t *testing.T) {
	_, addrs := startRanks(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := HeatJob{
		Client: Config{ClientID: 0, SimID: 0, ServerAddrs: addrs},
		Solver: solver.Config{N: 4, Steps: 5, Dt: 0.01},
	}
	if err := RunHeat(ctx, job); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestFileCheckpointerRoundtrip(t *testing.T) {
	ck := &FileCheckpointer{Dir: t.TempDir(), Every: 2}
	// Step 1 skipped by cadence, step 2 saved.
	if err := ck.Save(7, 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if step, _, err := ck.Load(7); err != nil || step != 0 {
		t.Fatalf("step %d err %v, want none", step, err)
	}
	if err := ck.Save(7, 2, []float64{3.5, -4.5}); err != nil {
		t.Fatal(err)
	}
	step, field, err := ck.Load(7)
	if err != nil || step != 2 {
		t.Fatalf("step %d err %v", step, err)
	}
	if field[0] != 3.5 || field[1] != -4.5 {
		t.Fatalf("field %v", field)
	}
	// Unknown sim: clean zero.
	if step, field, err := ck.Load(99); err != nil || step != 0 || field != nil {
		t.Fatalf("unknown sim: %d %v %v", step, field, err)
	}
}
