package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
)

// Checkpointer persists client solver state so restarts resume mid-run
// instead of recomputing from step zero (§3.1: "If the client simulation
// code supports checkpointing, it can be enabled so the client will restart
// from the last checkpoint only").
type Checkpointer interface {
	// Save records the field after the given (1-based) step.
	Save(simID, step int, field []float64) error
	// Load returns the most recent checkpoint, or step 0 when none exists.
	Load(simID int) (step int, field []float64, err error)
}

// FileCheckpointer stores one checkpoint file per simulation under Dir,
// written atomically (temp file + rename). Every controls the save cadence:
// a checkpoint is written every Every steps (default 1).
type FileCheckpointer struct {
	Dir   string
	Every int
}

func (f *FileCheckpointer) path(simID int) string {
	return filepath.Join(f.Dir, fmt.Sprintf("sim-%d.ckpt", simID))
}

// Save implements Checkpointer.
func (f *FileCheckpointer) Save(simID, step int, field []float64) error {
	every := f.Every
	if every <= 0 {
		every = 1
	}
	if step%every != 0 {
		return nil
	}
	buf := make([]byte, 8+8+8*len(field))
	binary.LittleEndian.PutUint64(buf, uint64(step))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(field)))
	for i, v := range field {
		binary.LittleEndian.PutUint64(buf[16+8*i:], math.Float64bits(v))
	}
	tmp := f.path(simID) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.path(simID))
}

// Load implements Checkpointer.
func (f *FileCheckpointer) Load(simID int) (int, []float64, error) {
	data, err := os.ReadFile(f.path(simID))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	if len(data) < 16 {
		return 0, nil, fmt.Errorf("client: corrupt checkpoint for sim %d", simID)
	}
	step := int(binary.LittleEndian.Uint64(data))
	n := int(binary.LittleEndian.Uint64(data[8:]))
	if len(data) != 16+8*n {
		return 0, nil, fmt.Errorf("client: corrupt checkpoint for sim %d: %d bytes for %d values", simID, len(data), n)
	}
	field := make([]float64, n)
	for i := range field {
		field[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[16+8*i:]))
	}
	return step, field, nil
}
