package client

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"melissa/internal/protocol"
)

// fakeServe runs a scripted predict server on loopback: handler gets each
// accepted connection with a frame reader and full control of the replies.
func fakeServe(t *testing.T, handler func(nc net.Conn, rd *protocol.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(nc, protocol.NewReader(bufio.NewReader(nc)))
		}
	}()
	return ln.Addr().String()
}

func reply(nc net.Conn, msg protocol.Message) {
	nc.Write(protocol.AppendEncode(nil, msg))
}

// TestPredictTypedErrors: each server rejection code must surface as its
// typed client error — matchable with errors.Is/errors.As — and a generic
// rejection as neither.
func TestPredictTypedErrors(t *testing.T) {
	addr := fakeServe(t, func(nc net.Conn, rd *protocol.Reader) {
		defer nc.Close()
		for {
			msg, err := rd.Next()
			if err != nil {
				return
			}
			req, ok := msg.(*protocol.PredictRequest)
			if !ok {
				return // Goodbye
			}
			switch req.ID {
			case 1:
				reply(nc, protocol.PredictError{ID: req.ID, Code: protocol.PredictErrOverloaded, Msg: "server overloaded", RetryAfterMs: 7})
			case 2:
				reply(nc, protocol.PredictError{ID: req.ID, Code: protocol.PredictErrExpired, Msg: "deadline exceeded"})
			case 3:
				reply(nc, protocol.PredictError{ID: req.ID, Code: protocol.PredictErrDraining, Msg: "server draining"})
			default:
				reply(nc, protocol.PredictError{ID: req.ID, Code: protocol.PredictErrGeneric, Msg: "bad parameter count"})
			}
			protocol.RecyclePredictRequest(req)
		}
	})
	c, err := DialPredict(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Predict([]float32{1}, 1) // ID 1 → overloaded
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 7*time.Millisecond || oe.Draining {
		t.Fatalf("bad OverloadedError detail: %+v", oe)
	}

	_, _, err = c.Predict([]float32{1}, 1) // ID 2 → expired
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}

	_, _, err = c.Predict([]float32{1}, 1) // ID 3 → draining
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded for draining, got %v", err)
	}
	if !errors.As(err, &oe) || !oe.Draining {
		t.Fatalf("draining flag lost: %+v", oe)
	}

	_, _, err = c.Predict([]float32{1}, 1) // ID 4 → generic
	if err == nil || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("generic rejection mistyped: %v", err)
	}
}

// TestPredictRetryReconnects: with a retry policy, a connection the server
// kills mid-call must be redialed transparently and the call must succeed
// on the next attempt. Also checks CallTimeout is forwarded as the wire
// deadline budget.
func TestPredictRetryReconnects(t *testing.T) {
	var conns atomic.Int64
	var sawDeadline atomic.Int64
	addr := fakeServe(t, func(nc net.Conn, rd *protocol.Reader) {
		defer nc.Close()
		n := conns.Add(1)
		for {
			msg, err := rd.Next()
			if err != nil {
				return
			}
			req, ok := msg.(*protocol.PredictRequest)
			if !ok {
				return
			}
			if req.DeadlineMs > 0 {
				sawDeadline.Add(1)
			}
			id := req.ID
			protocol.RecyclePredictRequest(req)
			if n == 1 {
				return // hang up without answering: client must reconnect
			}
			reply(nc, &protocol.PredictResponse{ID: id, Epoch: 3, Field: []float32{1, 2}})
		}
	})
	c, err := DialPredictOpts(addr, PredictOptions{
		DialTimeout:   time.Second,
		CallTimeout:   2 * time.Second,
		RetryAttempts: 3,
		RetryBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	field, epoch, err := c.Predict([]float32{1}, 1)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if epoch != 3 || len(field) != 2 {
		t.Fatalf("bad recovered answer: epoch %d field %v", epoch, field)
	}
	if conns.Load() != 2 {
		t.Fatalf("expected a reconnect (2 conns), saw %d", conns.Load())
	}
	if sawDeadline.Load() == 0 {
		t.Fatal("CallTimeout was not forwarded as a wire deadline")
	}
}

// TestPredictRetryStopsOnProtocolReject: a malformed-query rejection must
// fail fast even under a retry policy — exactly one request hits the
// server.
func TestPredictRetryStopsOnProtocolReject(t *testing.T) {
	var requests atomic.Int64
	addr := fakeServe(t, func(nc net.Conn, rd *protocol.Reader) {
		defer nc.Close()
		for {
			msg, err := rd.Next()
			if err != nil {
				return
			}
			req, ok := msg.(*protocol.PredictRequest)
			if !ok {
				return
			}
			requests.Add(1)
			reply(nc, protocol.PredictError{ID: req.ID, Code: protocol.PredictErrGeneric, Msg: "bad parameter count"})
			protocol.RecyclePredictRequest(req)
		}
	})
	c, err := DialPredictOpts(addr, PredictOptions{DialTimeout: time.Second, RetryAttempts: 5, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Predict([]float32{1}, 1); err == nil {
		t.Fatal("malformed query accepted")
	}
	if n := requests.Load(); n != 1 {
		t.Fatalf("protocol rejection was retried: %d requests", n)
	}
}

// TestPredictRetryThroughOverload: overloaded rejections retry until the
// server has room again.
func TestPredictRetryThroughOverload(t *testing.T) {
	var requests atomic.Int64
	addr := fakeServe(t, func(nc net.Conn, rd *protocol.Reader) {
		defer nc.Close()
		for {
			msg, err := rd.Next()
			if err != nil {
				return
			}
			req, ok := msg.(*protocol.PredictRequest)
			if !ok {
				return
			}
			id := req.ID
			protocol.RecyclePredictRequest(req)
			if requests.Add(1) < 3 {
				reply(nc, protocol.PredictError{ID: id, Code: protocol.PredictErrOverloaded, Msg: "server overloaded", RetryAfterMs: 1})
				continue
			}
			reply(nc, &protocol.PredictResponse{ID: id, Epoch: 1, Field: []float32{9}})
		}
	})
	c, err := DialPredictOpts(addr, PredictOptions{DialTimeout: time.Second, RetryAttempts: 5, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	field, _, err := c.Predict([]float32{1}, 1)
	if err != nil {
		t.Fatalf("overload retry failed: %v", err)
	}
	if len(field) != 1 || field[0] != 9 {
		t.Fatalf("bad answer after overload retries: %v", field)
	}
	if requests.Load() != 3 {
		t.Fatalf("expected 3 attempts, saw %d", requests.Load())
	}
}
