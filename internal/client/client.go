// Package client implements the Melissa client library: the minimalist API
// the paper exposes to instrument simulation codes (§3.1) — a call to
// connect (InitCommunication), a Send per computed time step, and a closing
// FinalizeCommunication — plus a ready-made runner that instruments the
// heat-equation solver. The client performs the paper's in-situ processing:
// the solver's float64 field is reduced to float32 before transmission
// (§3.2.2), and time steps are distributed round-robin across server ranks
// with the starting rank chosen from the client id.
package client

import (
	"context"
	"fmt"
	"sync"
	"time"

	"melissa/internal/protocol"
	"melissa/internal/solver"
	"melissa/internal/transport"
)

// Config identifies a client and locates the server.
type Config struct {
	ClientID    int
	SimID       int
	ServerAddrs []string
	DialTimeout time.Duration
	// HeartbeatInterval controls liveness pings; 0 disables them (tests).
	HeartbeatInterval time.Duration
	// Restart is the number of times the launcher restarted this client;
	// it is forwarded so the server knows duplicates may follow.
	Restart int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	return c
}

// API is a live connection from one simulation client to all server ranks.
type API struct {
	cfg   Config
	conn  *transport.ClientConn
	steps int

	// sendMu guards the reusable send state: the float32 conversion
	// scratch and the boxed TimeStep message. Reusing them makes the
	// per-step send path allocation-free (the in-situ float64→float32
	// reduction of §3.2.2 lands in recycled buffers, and passing a
	// *TimeStep avoids re-boxing the message per step).
	sendMu sync.Mutex
	msg    protocol.TimeStep

	hbStop chan struct{}
	hbDone sync.WaitGroup
}

// InitCommunication connects to every server rank, announces the client
// with a Hello on each connection, and starts the heartbeat loop.
// totalSteps declares how many time steps this client will produce.
func InitCommunication(cfg Config, totalSteps int) (*API, error) {
	cfg = cfg.withDefaults()
	conn, err := transport.Dial(cfg.ServerAddrs, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client %d: %w", cfg.ClientID, err)
	}
	a := &API{cfg: cfg, conn: conn, steps: totalSteps, hbStop: make(chan struct{})}
	hello := protocol.Hello{
		ClientID: int32(cfg.ClientID),
		SimID:    int32(cfg.SimID),
		Steps:    int32(totalSteps),
		Restart:  int32(cfg.Restart),
	}
	if err := conn.SendAll(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client %d: hello: %w", cfg.ClientID, err)
	}
	if cfg.HeartbeatInterval > 0 {
		a.hbDone.Add(1)
		go a.heartbeatLoop()
	}
	return a, nil
}

func (a *API) heartbeatLoop() {
	defer a.hbDone.Done()
	ticker := time.NewTicker(a.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-a.hbStop:
			return
		case <-ticker.C:
			// Best effort: a failed heartbeat means the connection is
			// dying; the send path will surface the error.
			_ = a.conn.SendAll(protocol.Heartbeat{ClientID: int32(a.cfg.ClientID)})
		}
	}
}

// Rank returns the destination server rank for a given time step: round
// robin offset by the client id, so that concurrently-started clients do
// not all hit the same rank with their first step (§3.2.2).
func (a *API) Rank(step int) int {
	return (a.cfg.ClientID + step) % a.conn.Ranks()
}

// Send streams one solver time step. input carries the raw simulation
// parameters and time value; field is the solver's float64 field, reduced
// to float32 here, in situ, before it crosses the wire. The frame is
// written through the rank's buffered writer and flushed — one explicit
// flush point per solver step, so any frames already buffered on the same
// rank (heartbeats, a preceding step) coalesce into the same syscall.
func (a *API) Send(step int, input []float64, field []float64) error {
	a.sendMu.Lock()
	defer a.sendMu.Unlock()
	a.msg.SimID = int32(a.cfg.SimID)
	a.msg.Step = int32(step)
	a.msg.Input = appendF32(a.msg.Input[:0], input)
	a.msg.Field = appendF32(a.msg.Field[:0], field)
	return a.conn.Send(a.Rank(step), &a.msg)
}

// FinalizeCommunication signals every rank that no more data will be sent,
// then disconnects.
func (a *API) FinalizeCommunication() error {
	a.stopHeartbeats()
	bye := protocol.Goodbye{ClientID: int32(a.cfg.ClientID), SimID: int32(a.cfg.SimID)}
	err := a.conn.SendAll(bye)
	if cerr := a.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort disconnects without a Goodbye, simulating a crash; tests and the
// launcher's kill path use it.
func (a *API) Abort() {
	a.stopHeartbeats()
	a.conn.Close()
}

func (a *API) stopHeartbeats() {
	select {
	case <-a.hbStop:
	default:
		close(a.hbStop)
	}
	a.hbDone.Wait()
}

func appendF32(dst []float32, in []float64) []float32 {
	for _, v := range in {
		dst = append(dst, float32(v))
	}
	return dst
}

// Job fully describes one ensemble member of any problem: a simulator
// factory, the raw physical parameters it was drawn with (the prefix of
// every streamed input vector), and the trajectory geometry. This is the
// problem-agnostic contract the launcher schedules; HeatJob remains as the
// heat-equation convenience wrapper.
type Job struct {
	Client Config
	// NewSim constructs the simulator; called once per attempt so a
	// restarted client starts from fresh (or checkpointed) solver state.
	NewSim func() (solver.Simulator, error)
	// Params are the raw physical parameters; each Send transmits them
	// followed by the physical time of the step.
	Params []float64
	// Steps is the trajectory length, Dt the physical seconds per step.
	Steps int
	Dt    float64
	// Checkpoint optionally persists solver state so a restarted client
	// resumes "from the last checkpoint only" (§3.1) instead of step 0.
	Checkpoint Checkpointer
	// StepDelay inserts an artificial pause per step; tests use it to
	// shape production rates.
	StepDelay time.Duration
	// FailAtStep > 0 makes the client abort (no Goodbye) after sending
	// that step — fault-injection hook for the launcher tests.
	FailAtStep int
}

// Run executes one instrumented ensemble member: init, one Send per
// computed time step, finalize. The context aborts the client between
// steps, emulating a kill by the launcher or a node failure.
func Run(ctx context.Context, job Job) error {
	if job.NewSim == nil {
		return fmt.Errorf("client %d: no simulator factory", job.Client.ClientID)
	}
	sim, err := job.NewSim()
	if err != nil {
		return err
	}
	startStep := 0
	if job.Checkpoint != nil {
		step, field, err := job.Checkpoint.Load(job.Client.SimID)
		if err != nil {
			return fmt.Errorf("client %d: loading checkpoint: %w", job.Client.ClientID, err)
		}
		if step > 0 {
			if err := sim.Restore(step, field); err != nil {
				return err
			}
			startStep = step
		}
	}

	api, err := InitCommunication(job.Client, job.Steps)
	if err != nil {
		return err
	}

	// Raw surrogate inputs: the physical parameters and the physical time,
	// normalized downstream by the trainer. One reusable vector serves
	// every step.
	base := job.Params
	input := make([]float64, len(base)+1)
	copy(input, base)

	for sim.StepIndex() < job.Steps {
		select {
		case <-ctx.Done():
			api.Abort()
			return ctx.Err()
		default:
		}
		if err := sim.StepOnce(); err != nil {
			api.Abort()
			return err
		}
		step := sim.StepIndex()
		if step <= startStep {
			continue // replaying to reach checkpoint state; already sent
		}
		if job.StepDelay > 0 {
			select {
			case <-ctx.Done():
				api.Abort()
				return ctx.Err()
			case <-time.After(job.StepDelay):
			}
		}
		input[len(base)] = float64(step) * job.Dt
		if err := api.Send(step, input, sim.Field()); err != nil {
			api.Abort()
			return fmt.Errorf("client %d: send step %d: %w", job.Client.ClientID, step, err)
		}
		if job.Checkpoint != nil {
			if err := job.Checkpoint.Save(job.Client.SimID, step, sim.Field()); err != nil {
				api.Abort()
				return fmt.Errorf("client %d: checkpoint: %w", job.Client.ClientID, err)
			}
		}
		if job.FailAtStep > 0 && step >= job.FailAtStep {
			api.Abort()
			return fmt.Errorf("client %d: injected failure at step %d", job.Client.ClientID, step)
		}
	}
	return api.FinalizeCommunication()
}

// HeatJob describes one heat-equation ensemble member: the solver
// configuration and the sampled parameters.
type HeatJob struct {
	Client     Config
	Solver     solver.Config
	Params     solver.Params
	Checkpoint Checkpointer
	StepDelay  time.Duration
	FailAtStep int
}

// RunHeat executes the instrumented heat solver through the generic Run
// path — the original convenience entry point.
func RunHeat(ctx context.Context, job HeatJob) error {
	cfg := job.Solver.WithDefaults()
	return Run(ctx, Job{
		Client: job.Client,
		NewSim: func() (solver.Simulator, error) { return solver.New(job.Solver, job.Params) },
		Params: job.Params.Vector(),
		Steps:  cfg.Steps,
		Dt:     cfg.Dt,
		Checkpoint: job.Checkpoint,
		StepDelay:  job.StepDelay,
		FailAtStep: job.FailAtStep,
	})
}
