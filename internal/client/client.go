// Package client implements the Melissa client library: the minimalist API
// the paper exposes to instrument simulation codes (§3.1) — a call to
// connect (InitCommunication), a Send per computed time step, and a closing
// FinalizeCommunication — plus a ready-made runner that instruments the
// heat-equation solver. The client performs the paper's in-situ processing:
// the solver's float64 field is reduced to float32 before transmission
// (§3.2.2), and time steps are distributed round-robin across server ranks
// with the starting rank chosen from the client id.
package client

import (
	"context"
	"fmt"
	"sync"
	"time"

	"melissa/internal/ddp"
	"melissa/internal/protocol"
	"melissa/internal/solver"
	"melissa/internal/transport"
)

// Config identifies a client and locates the server.
type Config struct {
	ClientID    int
	SimID       int
	ServerAddrs []string
	DialTimeout time.Duration
	// HeartbeatInterval controls liveness pings; 0 disables them (tests).
	HeartbeatInterval time.Duration
	// Restart is the number of times the launcher restarted this client;
	// it is forwarded so the server knows duplicates may follow.
	Restart int
	// Reconnect enables mid-stream resilience for elastic server groups:
	// a send failure marks the rank down and Send keeps succeeding —
	// frames routed to the dead rank are dropped while a background
	// redial loop (ddp.Retry backoff) re-establishes the connection and
	// re-announces the client with a fresh Hello; the server's dedup log
	// makes any overlap idempotent. Sends fail only once every rank is
	// down. Off (the default), a send failure is returned to the caller —
	// the fail-fast contract the launcher's restart policy expects.
	Reconnect bool
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	return c
}

// API is a live connection from one simulation client to all server ranks.
type API struct {
	cfg   Config
	conn  *transport.ClientConn
	steps int

	// sendMu guards the reusable send state: the float32 conversion
	// scratch and the boxed TimeStep message. Reusing them makes the
	// per-step send path allocation-free (the in-situ float64→float32
	// reduction of §3.2.2 lands in recycled buffers, and passing a
	// *TimeStep avoids re-boxing the message per step).
	sendMu sync.Mutex
	msg    protocol.TimeStep

	// Reconnect-mode state: which ranks are down and which have a redial
	// loop in flight. ctx cancels the redial loops on Abort/Finalize.
	downMu    sync.Mutex
	down      []bool
	redialing []bool
	ctx       context.Context
	cancel    context.CancelFunc

	hbStop chan struct{}
	hbDone sync.WaitGroup
}

// InitCommunication connects to every server rank, announces the client
// with a Hello on each connection, and starts the heartbeat loop. The dial
// is wrapped in the ddp retry/backoff policy, so a client started during a
// server re-formation (or slightly before the server) connects as soon as
// the listeners come up instead of failing fast. In reconnect mode the dial
// also tolerates dead ranks: unreachable addresses start out down with a
// redial loop working on them, so a simulation launched while part of an
// elastic group is gone still streams to the survivors. totalSteps declares
// how many time steps this client will produce.
func InitCommunication(cfg Config, totalSteps int) (*API, error) {
	cfg = cfg.withDefaults()
	var conn *transport.ClientConn
	var downRanks []int
	err := ddp.Retry(context.Background(), 5, 100*time.Millisecond, func() error {
		var err error
		if cfg.Reconnect {
			conn, downRanks, err = transport.DialAvailable(cfg.ServerAddrs, cfg.DialTimeout)
		} else {
			conn, err = transport.Dial(cfg.ServerAddrs, cfg.DialTimeout)
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("client %d: %w", cfg.ClientID, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &API{
		cfg: cfg, conn: conn, steps: totalSteps,
		down: make([]bool, conn.Ranks()), redialing: make([]bool, conn.Ranks()),
		ctx: ctx, cancel: cancel,
		hbStop: make(chan struct{}),
	}
	if cfg.Reconnect {
		for _, r := range downRanks {
			a.downMu.Lock()
			a.down[r] = true
			a.redialing[r] = true
			a.downMu.Unlock()
			go a.redialLoop(r)
		}
		// Hello rank by rank: a rank dying under the announcement is the
		// same failure Send tolerates, so it joins the redial policy
		// instead of aborting the client.
		for r := 0; r < conn.Ranks(); r++ {
			if a.isDown(r) {
				continue
			}
			if err := conn.Send(r, a.hello()); err != nil {
				a.rankFailed(r)
			}
		}
	} else if err := conn.SendAll(a.hello()); err != nil {
		cancel()
		conn.Close()
		return nil, fmt.Errorf("client %d: hello: %w", cfg.ClientID, err)
	}
	if cfg.HeartbeatInterval > 0 {
		a.hbDone.Add(1)
		go a.heartbeatLoop()
	}
	return a, nil
}

func (a *API) hello() protocol.Hello {
	return protocol.Hello{
		ClientID: int32(a.cfg.ClientID),
		SimID:    int32(a.cfg.SimID),
		Steps:    int32(a.steps),
		Restart:  int32(a.cfg.Restart),
	}
}

func (a *API) heartbeatLoop() {
	defer a.hbDone.Done()
	ticker := time.NewTicker(a.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-a.hbStop:
			return
		case <-ticker.C:
			// Best effort: a failed heartbeat means the connection is
			// dying; the send path (or the reconnect policy) handles it.
			hb := protocol.Heartbeat{ClientID: int32(a.cfg.ClientID)}
			for r := 0; r < a.conn.Ranks(); r++ {
				if a.isDown(r) {
					continue
				}
				if err := a.conn.Send(r, hb); err != nil && a.cfg.Reconnect {
					a.rankFailed(r)
				}
			}
		}
	}
}

// isDown reports whether the reconnect policy considers the rank dead.
func (a *API) isDown(rank int) bool {
	a.downMu.Lock()
	defer a.downMu.Unlock()
	return a.down[rank]
}

// rankFailed marks a rank down after a send error and ensures one redial
// loop is running for it. It reports how many ranks remain up.
func (a *API) rankFailed(rank int) (upLeft int) {
	a.conn.MarkDown(rank)
	a.downMu.Lock()
	a.down[rank] = true
	spawn := !a.redialing[rank]
	if spawn {
		a.redialing[rank] = true
	}
	for r := range a.down {
		if !a.down[r] {
			upLeft++
		}
	}
	a.downMu.Unlock()
	if spawn {
		go a.redialLoop(rank)
	}
	return upLeft
}

// redialLoop re-establishes a dead rank's connection with exponential
// backoff, then re-announces the client with a fresh Hello — the server's
// per-sim dedup bitsets make the overlap between dropped and re-sent
// frames idempotent. On success the rank rejoins the round-robin; on
// exhaustion it stays down and its share of frames keeps being dropped.
func (a *API) redialLoop(rank int) {
	err := ddp.Retry(a.ctx, 60, 100*time.Millisecond, func() error {
		if err := a.conn.Redial(rank, a.cfg.DialTimeout); err != nil {
			return err
		}
		if err := a.conn.Send(rank, a.hello()); err != nil {
			a.conn.MarkDown(rank)
			return err
		}
		return nil
	})
	a.downMu.Lock()
	a.redialing[rank] = false
	if err == nil {
		a.down[rank] = false
	}
	a.downMu.Unlock()
}

// Rank returns the destination server rank for a given time step: round
// robin offset by the client id, so that concurrently-started clients do
// not all hit the same rank with their first step (§3.2.2).
func (a *API) Rank(step int) int {
	return (a.cfg.ClientID + step) % a.conn.Ranks()
}

// Send streams one solver time step. input carries the raw simulation
// parameters and time value; field is the solver's float64 field, reduced
// to float32 here, in situ, before it crosses the wire. The frame is
// written through the rank's buffered writer and flushed — one explicit
// flush point per solver step, so any frames already buffered on the same
// rank (heartbeats, a preceding step) coalesce into the same syscall.
func (a *API) Send(step int, input []float64, field []float64) error {
	rank := a.Rank(step)
	if a.cfg.Reconnect && a.isDown(rank) {
		return nil // dropped: the rank is down, its redial loop is working
	}
	a.sendMu.Lock()
	a.msg.SimID = int32(a.cfg.SimID)
	a.msg.Step = int32(step)
	a.msg.Input = appendF32(a.msg.Input[:0], input)
	a.msg.Field = appendF32(a.msg.Field[:0], field)
	err := a.conn.Send(rank, &a.msg)
	a.sendMu.Unlock()
	if err == nil || !a.cfg.Reconnect {
		return err
	}
	if a.rankFailed(rank) == 0 {
		return fmt.Errorf("client %d: every server rank is down: %w", a.cfg.ClientID, err)
	}
	return nil // dropped this frame; surviving ranks keep streaming
}

// FinalizeCommunication signals every rank that no more data will be sent,
// then disconnects. In reconnect mode, down ranks are skipped — a Goodbye
// cannot reach a dead process, and the server's reception accounting
// treats the silent rank's share as abandoned — but at least one rank must
// take the Goodbye for the ensemble bookkeeping to complete.
func (a *API) FinalizeCommunication() error {
	a.stopHeartbeats()
	a.cancel()
	bye := protocol.Goodbye{ClientID: int32(a.cfg.ClientID), SimID: int32(a.cfg.SimID)}
	var err error
	if a.cfg.Reconnect {
		delivered := 0
		for r := 0; r < a.conn.Ranks(); r++ {
			if a.isDown(r) {
				continue
			}
			if serr := a.conn.Send(r, bye); serr == nil {
				delivered++
			} else if err == nil {
				err = serr
			}
		}
		if delivered > 0 {
			err = nil
		} else if err == nil {
			err = fmt.Errorf("client %d: goodbye reached no rank", a.cfg.ClientID)
		}
	} else {
		err = a.conn.SendAll(bye)
	}
	if cerr := a.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort disconnects without a Goodbye, simulating a crash; tests and the
// launcher's kill path use it.
func (a *API) Abort() {
	a.stopHeartbeats()
	a.cancel()
	a.conn.Close()
}

func (a *API) stopHeartbeats() {
	select {
	case <-a.hbStop:
	default:
		close(a.hbStop)
	}
	a.hbDone.Wait()
}

func appendF32(dst []float32, in []float64) []float32 {
	for _, v := range in {
		dst = append(dst, float32(v))
	}
	return dst
}

// Job fully describes one ensemble member of any problem: a simulator
// factory, the raw physical parameters it was drawn with (the prefix of
// every streamed input vector), and the trajectory geometry. This is the
// problem-agnostic contract the launcher schedules; HeatJob remains as the
// heat-equation convenience wrapper.
type Job struct {
	Client Config
	// NewSim constructs the simulator; called once per attempt so a
	// restarted client starts from fresh (or checkpointed) solver state.
	NewSim func() (solver.Simulator, error)
	// Params are the raw physical parameters; each Send transmits them
	// followed by the physical time of the step.
	Params []float64
	// Steps is the trajectory length, Dt the physical seconds per step.
	Steps int
	Dt    float64
	// Checkpoint optionally persists solver state so a restarted client
	// resumes "from the last checkpoint only" (§3.1) instead of step 0.
	Checkpoint Checkpointer
	// StepDelay inserts an artificial pause per step; tests use it to
	// shape production rates.
	StepDelay time.Duration
	// FailAtStep > 0 makes the client abort (no Goodbye) after sending
	// that step — fault-injection hook for the launcher tests.
	FailAtStep int
}

// Run executes one instrumented ensemble member: init, one Send per
// computed time step, finalize. The context aborts the client between
// steps, emulating a kill by the launcher or a node failure.
func Run(ctx context.Context, job Job) error {
	if job.NewSim == nil {
		return fmt.Errorf("client %d: no simulator factory", job.Client.ClientID)
	}
	sim, err := job.NewSim()
	if err != nil {
		return err
	}
	startStep := 0
	if job.Checkpoint != nil {
		step, field, err := job.Checkpoint.Load(job.Client.SimID)
		if err != nil {
			return fmt.Errorf("client %d: loading checkpoint: %w", job.Client.ClientID, err)
		}
		if step > 0 {
			if err := sim.Restore(step, field); err != nil {
				return err
			}
			startStep = step
		}
	}

	api, err := InitCommunication(job.Client, job.Steps)
	if err != nil {
		return err
	}

	// Raw surrogate inputs: the physical parameters and the physical time,
	// normalized downstream by the trainer. One reusable vector serves
	// every step.
	base := job.Params
	input := make([]float64, len(base)+1)
	copy(input, base)

	for sim.StepIndex() < job.Steps {
		select {
		case <-ctx.Done():
			api.Abort()
			return ctx.Err()
		default:
		}
		if err := sim.StepOnce(); err != nil {
			api.Abort()
			return err
		}
		step := sim.StepIndex()
		if step <= startStep {
			continue // replaying to reach checkpoint state; already sent
		}
		if job.StepDelay > 0 {
			select {
			case <-ctx.Done():
				api.Abort()
				return ctx.Err()
			case <-time.After(job.StepDelay):
			}
		}
		input[len(base)] = float64(step) * job.Dt
		if err := api.Send(step, input, sim.Field()); err != nil {
			api.Abort()
			return fmt.Errorf("client %d: send step %d: %w", job.Client.ClientID, step, err)
		}
		if job.Checkpoint != nil {
			if err := job.Checkpoint.Save(job.Client.SimID, step, sim.Field()); err != nil {
				api.Abort()
				return fmt.Errorf("client %d: checkpoint: %w", job.Client.ClientID, err)
			}
		}
		if job.FailAtStep > 0 && step >= job.FailAtStep {
			api.Abort()
			return fmt.Errorf("client %d: injected failure at step %d", job.Client.ClientID, step)
		}
	}
	return api.FinalizeCommunication()
}

// HeatJob describes one heat-equation ensemble member: the solver
// configuration and the sampled parameters.
type HeatJob struct {
	Client     Config
	Solver     solver.Config
	Params     solver.Params
	Checkpoint Checkpointer
	StepDelay  time.Duration
	FailAtStep int
}

// RunHeat executes the instrumented heat solver through the generic Run
// path — the original convenience entry point.
func RunHeat(ctx context.Context, job HeatJob) error {
	cfg := job.Solver.WithDefaults()
	return Run(ctx, Job{
		Client: job.Client,
		NewSim: func() (solver.Simulator, error) { return solver.New(job.Solver, job.Params) },
		Params: job.Params.Vector(),
		Steps:  cfg.Steps,
		Dt:     cfg.Dt,
		Checkpoint: job.Checkpoint,
		StepDelay:  job.StepDelay,
		FailAtStep: job.FailAtStep,
	})
}
