package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"melissa/internal/ddp"
	"melissa/internal/protocol"
)

// Sentinel errors for typed server rejections. Match with errors.Is; an
// overloaded rejection also carries a retry-after hint via OverloadedError
// (errors.As).
var (
	// ErrOverloaded: the server shed the request (admit queue full, or the
	// server is draining for shutdown). The request was never computed —
	// safe to retry after backing off.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrDeadlineExceeded: the request's deadline budget elapsed before the
	// server computed it (or the server rejected it as already expired).
	// Retrying is pointless — the caller's budget is spent.
	ErrDeadlineExceeded = errors.New("client: predict deadline exceeded")
)

// OverloadedError is the typed rejection behind ErrOverloaded. It
// implements net.Error with Timeout() true, so ddp.Classify treats it as a
// transient fault and ddp.Retry backs off and retries it.
type OverloadedError struct {
	// RetryAfter is the server's hint for when queue capacity should free
	// up (zero if it offered none).
	RetryAfter time.Duration
	// Draining: the rejection came from a server in graceful shutdown —
	// retrying against the same address only helps once it restarts.
	Draining bool
}

func (e *OverloadedError) Error() string {
	what := "server overloaded"
	if e.Draining {
		what = "server draining"
	}
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: %s (retry after %v)", what, e.RetryAfter)
	}
	return "client: " + what
}

func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }
func (e *OverloadedError) Timeout() bool        { return true }
func (e *OverloadedError) Temporary() bool      { return true }

// transientIOError marks a broken-stream fault as retryable: the
// connection is torn down and redialed on the next attempt, so for an
// opted-in retry policy the failure really is transient. Implementing
// net.Error with Timeout() true routes it through ddp.Classify's
// transient class.
type transientIOError struct{ err error }

func (e *transientIOError) Error() string   { return e.err.Error() }
func (e *transientIOError) Unwrap() error   { return e.err }
func (e *transientIOError) Timeout() bool   { return true }
func (e *transientIOError) Temporary() bool { return true }

// PredictOptions tunes a PredictConn's robustness behavior. The zero value
// reproduces the bare client: no deadlines, no retry.
type PredictOptions struct {
	// DialTimeout bounds connection establishment (and each reconnect when
	// retry is enabled). 0 dials without a deadline.
	DialTimeout time.Duration
	// CallTimeout bounds each request's full round trip with a socket
	// deadline, and is forwarded to the server as the request's DeadlineMs
	// budget — so a query this client has already given up on is shed
	// server-side instead of computed. 0 means no per-call deadline.
	CallTimeout time.Duration
	// RetryAttempts > 1 opts into automatic retry with ddp.Retry's
	// exponential backoff: overloaded rejections and transient I/O faults
	// (timeouts, resets, refused reconnects) are retried, redialing the
	// connection after an I/O fault. Protocol rejections — malformed
	// query, expired deadline — fail fast. <= 1 disables retry.
	RetryAttempts int
	// RetryBackoff is the base backoff between attempts (ddp.Retry's
	// default when zero).
	RetryBackoff time.Duration
	// Dial overrides the transport used to (re)connect — chaos tests wrap
	// the socket with a fault injector here. Nil dials plain TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

// PredictConn is a live connection to a melissa-serve instance: the query
// side of the serving tier, mirroring how API is the ingestion side. It is
// a synchronous request/response client — one outstanding request at a
// time, not safe for concurrent use; open one PredictConn per querying
// goroutine (the server micro-batches across connections, so concurrency
// comes from many connections, not pipelining on one).
type PredictConn struct {
	addr string
	opts PredictOptions
	nc   net.Conn
	rd   *protocol.Reader
	buf  []byte                  // reusable encode scratch
	req  protocol.PredictRequest // persistent request header: encoding
	// through a pointer keeps the per-request interface boxing off the heap
	id uint64
}

// DialPredict connects to a melissa-serve address. A zero timeout dials
// without a deadline.
func DialPredict(addr string, timeout time.Duration) (*PredictConn, error) {
	return DialPredictOpts(addr, PredictOptions{DialTimeout: timeout})
}

// DialPredictOpts connects to a melissa-serve address with per-call
// deadlines and an optional retry/reconnect policy.
func DialPredictOpts(addr string, opts PredictOptions) (*PredictConn, error) {
	c := &PredictConn{addr: addr, opts: opts}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// redial (re-)establishes the connection, dropping any previous socket.
func (c *PredictConn) redial() error {
	c.teardown()
	dial := c.opts.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: dial predict %s: %w", c.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // single-frame requests must not wait for Nagle
	}
	c.nc = nc
	c.rd = protocol.NewReader(bufio.NewReaderSize(nc, 1<<15))
	return nil
}

// teardown drops the socket after an I/O fault: once a send or receive
// fails mid-call the stream state is unknown, so the only safe recovery is
// a fresh connection.
func (c *PredictConn) teardown() {
	if c.nc != nil {
		c.nc.Close()
		c.nc, c.rd = nil, nil
	}
}

// live ensures there is a usable connection, redialing if the previous one
// was torn down by a fault or Close.
func (c *PredictConn) live() error {
	if c.nc != nil {
		return nil
	}
	return c.redial()
}

// arm applies the per-call socket deadline, if one is configured.
func (c *PredictConn) arm() {
	if to := c.opts.CallTimeout; to > 0 {
		c.nc.SetDeadline(time.Now().Add(to))
	}
}

// Close says Goodbye and tears the connection down. The Goodbye write gets
// a short deadline; a failure to send it is reported, not dropped.
func (c *PredictConn) Close() error {
	if c.nc == nil {
		return nil
	}
	c.nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
	sendErr := c.send(protocol.Goodbye{})
	closeErr := c.nc.Close()
	c.nc, c.rd = nil, nil
	return errors.Join(sendErr, closeErr)
}

func (c *PredictConn) send(msg protocol.Message) error {
	c.buf = protocol.AppendEncode(c.buf[:0], msg)
	_, err := c.nc.Write(c.buf)
	return err
}

// deadlineMs converts a call budget to the request's wire field, clamped
// to at least 1ms (0 on the wire means "no deadline").
func deadlineMs(d time.Duration) uint32 {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > int64(^uint32(0)) {
		ms = int64(^uint32(0))
	}
	return uint32(ms)
}

// Predict asks the server for the field at (params, t). The returned slice
// is freshly allocated; use PredictInto on hot paths.
func (c *PredictConn) Predict(params []float32, t float32) ([]float32, uint32, error) {
	return c.PredictInto(nil, params, t)
}

// PredictInto is Predict with a caller-supplied destination, grown as
// needed and returned along with the checkpoint epoch that computed the
// answer. With sufficient capacity the steady-state round trip performs no
// heap allocations on either end of the wire.
//
// With PredictOptions.RetryAttempts > 1, overloaded rejections and
// transient I/O faults are retried under ddp.Retry's backoff (reconnecting
// after an I/O fault); errors.Is(err, ErrOverloaded) and errors.Is(err,
// ErrDeadlineExceeded) identify the typed rejections either way.
func (c *PredictConn) PredictInto(dst []float32, params []float32, t float32) ([]float32, uint32, error) {
	if c.opts.RetryAttempts <= 1 {
		return c.predictOnce(dst, params, t)
	}
	var epoch uint32
	err := ddp.Retry(context.Background(), c.opts.RetryAttempts, c.opts.RetryBackoff, func() error {
		var attemptErr error
		dst, epoch, attemptErr = c.predictOnce(dst, params, t)
		return attemptErr
	})
	return dst, epoch, err
}

// predictOnce runs one request/response exchange on the live connection.
// Server rejections come back typed and leave the connection usable; I/O
// faults tear the connection down (the next call redials) and are wrapped
// as transient so a retry policy reconnects through them.
func (c *PredictConn) predictOnce(dst []float32, params []float32, t float32) ([]float32, uint32, error) {
	if err := c.live(); err != nil {
		return dst, 0, err
	}
	c.arm()
	c.id++
	c.req.ID, c.req.T, c.req.Params = c.id, t, params
	if to := c.opts.CallTimeout; to > 0 {
		c.req.DeadlineMs = deadlineMs(to)
	} else {
		c.req.DeadlineMs = 0
	}
	err := c.send(&c.req)
	c.req.Params = nil // don't pin the caller's slice past the call
	if err != nil {
		c.teardown()
		return dst, 0, &transientIOError{fmt.Errorf("client: predict send: %w", err)}
	}
	for {
		msg, err := c.rd.Next()
		if err != nil {
			c.teardown()
			return dst, 0, &transientIOError{fmt.Errorf("client: predict response: %w", err)}
		}
		switch m := msg.(type) {
		case *protocol.PredictResponse:
			if m.ID != c.req.ID {
				protocol.RecyclePredictResponse(m) // stale (e.g. answer outliving a shed retry)
				continue
			}
			if cap(dst) < len(m.Field) {
				dst = make([]float32, len(m.Field))
			}
			dst = dst[:len(m.Field)]
			copy(dst, m.Field)
			epoch := m.Epoch
			protocol.RecyclePredictResponse(m)
			return dst, epoch, nil
		case protocol.PredictError:
			if m.ID != 0 && m.ID != c.req.ID {
				continue // rejection for an abandoned earlier request
			}
			return dst, 0, rejectionError(m)
		default:
			return dst, 0, fmt.Errorf("client: unexpected %T while awaiting prediction", msg)
		}
	}
}

// rejectionError maps a wire PredictError to the client's typed errors.
func rejectionError(m protocol.PredictError) error {
	switch m.Code {
	case protocol.PredictErrOverloaded:
		return &OverloadedError{RetryAfter: time.Duration(m.RetryAfterMs) * time.Millisecond}
	case protocol.PredictErrDraining:
		return &OverloadedError{RetryAfter: time.Duration(m.RetryAfterMs) * time.Millisecond, Draining: true}
	case protocol.PredictErrExpired:
		return fmt.Errorf("%w (server: %s)", ErrDeadlineExceeded, m.Msg)
	default:
		return fmt.Errorf("client: predict rejected: %s", m.Msg)
	}
}

// Info asks the server to describe its loaded model — including, since the
// overload-safety extension, its pressure counters (queue depth, shed and
// expired totals, slow-client disconnects, draining flag).
func (c *PredictConn) Info() (protocol.ServeInfo, error) {
	if err := c.live(); err != nil {
		return protocol.ServeInfo{}, err
	}
	c.arm()
	if err := c.send(protocol.ServeInfoRequest{}); err != nil {
		c.teardown()
		return protocol.ServeInfo{}, err
	}
	msg, err := c.rd.Next()
	if err != nil {
		c.teardown()
		return protocol.ServeInfo{}, err
	}
	info, ok := msg.(protocol.ServeInfo)
	if !ok {
		return protocol.ServeInfo{}, fmt.Errorf("client: unexpected %T while awaiting server info", msg)
	}
	return info, nil
}

// Reload asks the server to hot-reload its checkpoint (empty path = the
// server's configured path) and returns the epoch now serving.
func (c *PredictConn) Reload(path string) (uint32, error) {
	if err := c.live(); err != nil {
		return 0, err
	}
	c.arm()
	if err := c.send(protocol.Reload{Path: path}); err != nil {
		c.teardown()
		return 0, err
	}
	msg, err := c.rd.Next()
	if err != nil {
		c.teardown()
		return 0, err
	}
	res, ok := msg.(protocol.ReloadResult)
	if !ok {
		return 0, fmt.Errorf("client: unexpected %T while awaiting reload result", msg)
	}
	if res.Msg != "" {
		return res.Epoch, fmt.Errorf("client: reload failed: %s", res.Msg)
	}
	return res.Epoch, nil
}

// PredictRemote is the one-shot convenience: dial, query, close. For more
// than one query, hold a PredictConn. The one-shot path carries
// conservative default deadlines (10s dial, 30s call) so it can never hang
// on a wedged server.
func PredictRemote(addr string, params []float32, t float32) ([]float32, error) {
	c, err := DialPredictOpts(addr, PredictOptions{
		DialTimeout: 10 * time.Second,
		CallTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	field, _, err := c.Predict(params, t)
	return field, err
}
