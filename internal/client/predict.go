package client

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"melissa/internal/protocol"
)

// PredictConn is a live connection to a melissa-serve instance: the query
// side of the serving tier, mirroring how API is the ingestion side. It is
// a synchronous request/response client — one outstanding request at a
// time, not safe for concurrent use; open one PredictConn per querying
// goroutine (the server micro-batches across connections, so concurrency
// comes from many connections, not pipelining on one).
type PredictConn struct {
	nc  net.Conn
	rd  *protocol.Reader
	buf []byte                  // reusable encode scratch
	req protocol.PredictRequest // persistent request header: encoding
	// through a pointer keeps the per-request interface boxing off the heap
	id uint64
}

// DialPredict connects to a melissa-serve address. A zero timeout dials
// without a deadline.
func DialPredict(addr string, timeout time.Duration) (*PredictConn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial predict %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // single-frame requests must not wait for Nagle
	}
	return &PredictConn{nc: nc, rd: protocol.NewReader(bufio.NewReaderSize(nc, 1<<15))}, nil
}

// Close says Goodbye and tears the connection down.
func (c *PredictConn) Close() error {
	c.send(protocol.Goodbye{})
	return c.nc.Close()
}

func (c *PredictConn) send(msg protocol.Message) error {
	c.buf = protocol.AppendEncode(c.buf[:0], msg)
	_, err := c.nc.Write(c.buf)
	return err
}

// Predict asks the server for the field at (params, t). The returned slice
// is freshly allocated; use PredictInto on hot paths.
func (c *PredictConn) Predict(params []float32, t float32) ([]float32, uint32, error) {
	return c.PredictInto(nil, params, t)
}

// PredictInto is Predict with a caller-supplied destination, grown as
// needed and returned along with the checkpoint epoch that computed the
// answer. With sufficient capacity the steady-state round trip performs no
// heap allocations on either end of the wire.
func (c *PredictConn) PredictInto(dst []float32, params []float32, t float32) ([]float32, uint32, error) {
	c.id++
	c.req.ID, c.req.T, c.req.Params = c.id, t, params
	err := c.send(&c.req)
	c.req.Params = nil // don't pin the caller's slice past the call
	if err != nil {
		return dst, 0, err
	}
	for {
		msg, err := c.rd.Next()
		if err != nil {
			return dst, 0, fmt.Errorf("client: predict response: %w", err)
		}
		switch m := msg.(type) {
		case *protocol.PredictResponse:
			if m.ID != c.id {
				protocol.RecyclePredictResponse(m) // stale (shouldn't happen on a sync conn)
				continue
			}
			if cap(dst) < len(m.Field) {
				dst = make([]float32, len(m.Field))
			}
			dst = dst[:len(m.Field)]
			copy(dst, m.Field)
			epoch := m.Epoch
			protocol.RecyclePredictResponse(m)
			return dst, epoch, nil
		case protocol.PredictError:
			return dst, 0, fmt.Errorf("client: predict rejected: %s", m.Msg)
		default:
			return dst, 0, fmt.Errorf("client: unexpected %T while awaiting prediction", msg)
		}
	}
}

// Info asks the server to describe its loaded model.
func (c *PredictConn) Info() (protocol.ServeInfo, error) {
	if err := c.send(protocol.ServeInfoRequest{}); err != nil {
		return protocol.ServeInfo{}, err
	}
	msg, err := c.rd.Next()
	if err != nil {
		return protocol.ServeInfo{}, err
	}
	info, ok := msg.(protocol.ServeInfo)
	if !ok {
		return protocol.ServeInfo{}, fmt.Errorf("client: unexpected %T while awaiting server info", msg)
	}
	return info, nil
}

// Reload asks the server to hot-reload its checkpoint (empty path = the
// server's configured path) and returns the epoch now serving.
func (c *PredictConn) Reload(path string) (uint32, error) {
	if err := c.send(protocol.Reload{Path: path}); err != nil {
		return 0, err
	}
	msg, err := c.rd.Next()
	if err != nil {
		return 0, err
	}
	res, ok := msg.(protocol.ReloadResult)
	if !ok {
		return 0, fmt.Errorf("client: unexpected %T while awaiting reload result", msg)
	}
	if res.Msg != "" {
		return res.Epoch, fmt.Errorf("client: reload failed: %s", res.Msg)
	}
	return res.Epoch, nil
}

// PredictRemote is the one-shot convenience: dial, query, close. For more
// than one query, hold a PredictConn.
func PredictRemote(addr string, params []float32, t float32) ([]float32, error) {
	c, err := DialPredict(addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	field, _, err := c.Predict(params, t)
	return field, err
}
