package buffer

import "testing"

func TestUniformEvictDropsUnseenUnderPressure(t *testing.T) {
	// Heavy overproduction without consumption: unlike the Reservoir,
	// UniformEvict must discard unseen samples.
	u := NewUniformEvict(16, 0, 3)
	for i := 0; i < 400; i++ {
		if !u.Put(mkSample(0, i)) {
			t.Fatal("UniformEvict.Put must always accept")
		}
	}
	if u.Len() != 16 {
		t.Fatalf("population %d, want capacity", u.Len())
	}
	if u.DroppedUnseen() == 0 {
		t.Fatal("expected unseen drops under pressure")
	}
	// Samples dropped unseen can never be retrieved.
	u.EndReception()
	got := map[Key]bool{}
	for {
		s, ok := u.TryGet()
		if !ok {
			break
		}
		got[s.Key()] = true
	}
	if len(got)+u.DroppedUnseen() != 400 {
		t.Fatalf("retrieved %d + dropped %d != 400", len(got), u.DroppedUnseen())
	}
}

func TestUniformEvictThresholdAndRepeat(t *testing.T) {
	u := NewUniformEvict(100, 5, 7)
	for i := 0; i < 5; i++ {
		u.Put(mkSample(0, i))
	}
	if _, ok := u.TryGet(); ok {
		t.Fatal("yielded at threshold")
	}
	u.Put(mkSample(0, 5))
	if _, ok := u.TryGet(); !ok {
		t.Fatal("did not yield above threshold")
	}
	// With replacement: population unchanged by gets pre-drain.
	if u.Len() != 6 {
		t.Fatalf("population %d", u.Len())
	}
	if u.SeenCount() != 1 || u.UnseenCount() != 5 {
		t.Fatalf("seen/unseen %d/%d", u.SeenCount(), u.UnseenCount())
	}
}

func TestUniformEvictDrains(t *testing.T) {
	u := NewUniformEvict(50, 10, 9)
	for i := 0; i < 20; i++ {
		u.Put(mkSample(0, i))
	}
	u.EndReception()
	count := 0
	for {
		if _, ok := u.TryGet(); !ok {
			break
		}
		count++
	}
	if count != 20 || !u.Drained() {
		t.Fatalf("drained %d, drained=%v", count, u.Drained())
	}
}

func TestUniformEvictViaConfig(t *testing.T) {
	p, err := New(Config{Kind: UniformEvictKind, Capacity: 10, Threshold: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "UniformEvict" {
		t.Fatalf("name %q", p.Name())
	}
}

// TestReservoirVsUniformEvictCoverage contrasts the two policies under the
// same overproduction pattern: the Reservoir covers every sample, the
// ablation loses a substantial fraction.
func TestReservoirVsUniformEvictCoverage(t *testing.T) {
	coverage := func(p Policy) int {
		got := map[Key]bool{}
		n := 0
		for round := 0; round < 100; round++ {
			for i := 0; i < 8; i++ { // 8 puts per get
				p.Put(mkSample(0, n))
				n++
			}
			if s, ok := p.TryGet(); ok {
				got[s.Key()] = true
			}
		}
		p.EndReception()
		for {
			s, ok := p.TryGet()
			if !ok {
				break
			}
			got[s.Key()] = true
		}
		return len(got)
	}
	// The Reservoir blocks production when full of unseen (Put refusals
	// here mean the producer would stall, no loss); UniformEvict accepts
	// everything and silently loses data.
	resCov := coverage(NewReservoir(32, 0, 5))
	uniCov := coverage(NewUniformEvict(32, 0, 5))
	if uniCov >= resCov {
		t.Fatalf("ablation coverage %d should be below Reservoir-style coverage %d", uniCov, resCov)
	}
}
