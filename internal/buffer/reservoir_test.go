package buffer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReservoirThresholdGate(t *testing.T) {
	r := NewReservoir(100, 5, 1)
	for i := 0; i < 5; i++ {
		r.Put(mkSample(0, i))
	}
	if _, ok := r.TryGet(); ok {
		t.Fatal("yielded at population == threshold (Algorithm 1 waits while ≤ threshold)")
	}
	r.Put(mkSample(0, 5))
	if _, ok := r.TryGet(); !ok {
		t.Fatal("did not yield above threshold")
	}
}

func TestReservoirRepeatsSamples(t *testing.T) {
	// With production stopped and reception not over, the Reservoir must
	// keep yielding already-seen samples (the paper's key throughput
	// property).
	r := NewReservoir(100, 0, 2)
	r.Put(mkSample(0, 0))
	for i := 0; i < 10; i++ {
		s, ok := r.TryGet()
		if !ok || s.Step != 0 {
			t.Fatalf("get %d: ok=%v step=%d", i, ok, s.Step)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("population %d, want 1 (sample retained)", r.Len())
	}
}

func TestReservoirUnseenMigratesToSeen(t *testing.T) {
	r := NewReservoir(10, 0, 3)
	r.Put(mkSample(0, 0))
	if r.UnseenCount() != 1 || r.SeenCount() != 0 {
		t.Fatalf("unseen=%d seen=%d", r.UnseenCount(), r.SeenCount())
	}
	r.TryGet()
	if r.UnseenCount() != 0 || r.SeenCount() != 1 {
		t.Fatalf("after get: unseen=%d seen=%d", r.UnseenCount(), r.SeenCount())
	}
}

func TestReservoirPutRefusesOnlyWhenUnseenFull(t *testing.T) {
	r := NewReservoir(3, 0, 4)
	for i := 0; i < 3; i++ {
		if !r.Put(mkSample(0, i)) {
			t.Fatalf("put %d refused", i)
		}
	}
	// Buffer full of unseen: Put must refuse (producer blocks).
	if r.Put(mkSample(0, 3)) {
		t.Fatal("put accepted while unseen fills capacity")
	}
	// Seeing one sample frees eviction room: a put should now succeed by
	// evicting the seen one.
	if _, ok := r.TryGet(); !ok {
		t.Fatal("get failed")
	}
	if !r.Put(mkSample(0, 3)) {
		t.Fatal("put refused although a seen sample was evictable")
	}
	if r.Len() != 3 {
		t.Fatalf("population %d, want capacity 3", r.Len())
	}
}

func TestReservoirEvictsOnlySeen(t *testing.T) {
	// Fill with capacity-1 unseen plus 1 seen; the next put must evict the
	// seen element, never an unseen one.
	r := NewReservoir(4, 0, 5)
	r.Put(mkSample(9, 9)) // will become the seen one
	s, _ := r.TryGet()
	if s.SimID != 9 {
		t.Fatal("unexpected sample")
	}
	for i := 0; i < 3; i++ {
		r.Put(mkSample(0, i))
	}
	if r.SeenCount() != 1 || r.UnseenCount() != 3 {
		t.Fatalf("seen=%d unseen=%d", r.SeenCount(), r.UnseenCount())
	}
	r.Put(mkSample(0, 3)) // buffer full: must evict the lone seen sample
	if r.SeenCount() != 0 || r.UnseenCount() != 4 {
		t.Fatalf("after eviction: seen=%d unseen=%d", r.SeenCount(), r.UnseenCount())
	}
}

func TestReservoirDrainAfterEndReception(t *testing.T) {
	r := NewReservoir(100, 50, 3)
	const n = 20
	for i := 0; i < n; i++ {
		r.Put(mkSample(0, i))
	}
	// Below threshold: gated.
	if _, ok := r.TryGet(); ok {
		t.Fatal("yielded below threshold")
	}
	r.EndReception()
	got := map[Key]int{}
	for {
		s, ok := r.TryGet()
		if !ok {
			break
		}
		got[s.Key()]++
	}
	if !r.Drained() {
		t.Fatal("not drained")
	}
	if len(got) != n {
		t.Fatalf("drained %d unique, want %d", len(got), n)
	}
	for k, c := range got {
		// While draining each sample is deleted upon selection, so exactly once.
		if c != 1 {
			t.Fatalf("sample %v yielded %d times while draining", k, c)
		}
	}
}

func TestReservoirDrainAfterMixedSeenUnseen(t *testing.T) {
	r := NewReservoir(100, 0, 11)
	for i := 0; i < 10; i++ {
		r.Put(mkSample(0, i))
	}
	for i := 0; i < 5; i++ {
		r.TryGet() // migrate a few to seen (with repetition possible)
	}
	r.EndReception()
	count := 0
	for {
		if _, ok := r.TryGet(); !ok {
			break
		}
		count++
	}
	if count != 10 {
		t.Fatalf("drained %d, want 10 (every stored sample exactly once)", count)
	}
}

// TestReservoirNeverDropsUnseen is the paper's central safety claim: "data
// production can proceed as long as the buffer is not full of unseen
// samples, avoiding discarding any unseen data". Every sample accepted by
// Put must be returned by Get at least once before it can disappear.
func TestReservoirNeverDropsUnseen(t *testing.T) {
	r := NewReservoir(16, 4, 13)
	returned := map[Key]bool{}
	inserted := map[Key]bool{}
	n := 0
	// Heavy overproduction: 10 puts per get, forcing constant eviction.
	for round := 0; round < 200; round++ {
		for i := 0; i < 10; i++ {
			s := mkSample(0, n)
			n++
			if r.Put(s) {
				inserted[s.Key()] = true
			}
		}
		if s, ok := r.TryGet(); ok {
			returned[s.Key()] = true
		}
	}
	r.EndReception()
	for {
		s, ok := r.TryGet()
		if !ok {
			break
		}
		returned[s.Key()] = true
	}
	for k := range inserted {
		if !returned[k] {
			t.Fatalf("sample %v was accepted but never returned (unseen data dropped)", k)
		}
	}
}

func TestReservoirDeterministicWithSeed(t *testing.T) {
	run := func(seed uint64) []int {
		r := NewReservoir(8, 2, seed)
		var out []int
		for i := 0; i < 50; i++ {
			r.Put(mkSample(0, i))
			if s, ok := r.TryGet(); ok {
				out = append(out, s.Step)
			}
		}
		return out
	}
	a, b := run(3), run(3)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different sequences")
		}
	}
}

// TestReservoirSelectionUniform draws many times from a static population
// and checks the empirical distribution is roughly uniform (χ² sanity
// bound).
func TestReservoirSelectionUniform(t *testing.T) {
	const n = 20
	const draws = 20000
	r := NewReservoir(n, 0, 17)
	for i := 0; i < n; i++ {
		r.Put(mkSample(0, i))
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		s, ok := r.TryGet()
		if !ok {
			t.Fatal("get failed")
		}
		counts[s.Step]++
	}
	expected := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 19 degrees of freedom; p=0.001 critical value ≈ 43.8. Seeded RNG, so
	// deterministic — this guards against accidentally biased selection.
	if chi2 > 43.8 {
		t.Fatalf("selection not uniform: chi2 = %v, counts = %v", chi2, counts)
	}
}

// TestReservoirResidencyExpectation reproduces Appendix A: with a full
// buffer of capacity n under continuous insertion (eviction at a random
// location), the expected number of subsequent insertions an element
// survives is n−1.
func TestReservoirResidencyExpectation(t *testing.T) {
	const n = 64
	const inserts = 60000
	r := NewReservoir(n, 0, 23)
	// Fill and mark everything seen so puts evict from the whole buffer.
	for i := 0; i < n; i++ {
		r.Put(mkSample(0, i))
	}
	for r.UnseenCount() > 0 {
		r.TryGet()
	}

	insertedAt := map[Key]int{}
	for i := 0; i < n; i++ {
		insertedAt[Key{0, i}] = 0
	}
	var totalResidency, evictions float64
	for i := 1; i <= inserts; i++ {
		s := mkSample(1, i)
		before := snapshotKeys(r)
		if !r.Put(s) {
			t.Fatal("put refused")
		}
		// Immediately mark the new sample seen to stay in the all-seen regime.
		for r.UnseenCount() > 0 {
			r.TryGet()
		}
		after := snapshotKeys(r)
		for k := range before {
			if !after[k] {
				totalResidency += float64(i - insertedAt[k])
				evictions++
			}
		}
		insertedAt[s.Key()] = i
	}
	mean := totalResidency / evictions
	want := float64(n - 1)
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("mean residency %v, Appendix A predicts %v (±10%%)", mean, want)
	}
}

func snapshotKeys(r *Reservoir) map[Key]bool {
	out := make(map[Key]bool, len(r.seen)+len(r.notSeen))
	for _, s := range r.seen {
		out[s.Key()] = true
	}
	for _, s := range r.notSeen {
		out[s.Key()] = true
	}
	return out
}

// Property: the Reservoir never exceeds its capacity and never yields while
// gated, across random operation sequences.
func TestReservoirInvariantsProperty(t *testing.T) {
	f := func(ops []byte, seed uint64) bool {
		capacity := 8
		threshold := 3
		r := NewReservoir(capacity, threshold, seed)
		n := 0
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // put twice as often as get
				r.Put(mkSample(0, n))
				n++
			case 2:
				before := r.Len()
				_, ok := r.TryGet()
				if ok && !r.ReceptionOver() && before <= threshold {
					return false // yielded while gated
				}
			}
			if r.Len() > capacity {
				return false
			}
			if r.UnseenCount() < 0 || r.SeenCount() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromConfig(t *testing.T) {
	for _, kind := range []Kind{FIFOKind, FIROKind, ReservoirKind} {
		p, err := New(Config{Kind: kind, Capacity: 10, Threshold: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != string(kind) {
			t.Fatalf("name %q, want %q", p.Name(), kind)
		}
		if p.Capacity() != 10 {
			t.Fatal("capacity not applied")
		}
	}
	if _, err := New(Config{Kind: "bogus"}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}
