package buffer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBlockingPutGet(t *testing.T) {
	b := NewBlocking(NewFIFO(0))
	b.Put(mkSample(0, 0))
	s, ok := b.Get()
	if !ok || s.Step != 0 {
		t.Fatalf("get: ok=%v step=%d", ok, s.Step)
	}
}

func TestBlockingGetWaitsForPut(t *testing.T) {
	b := NewBlocking(NewFIFO(0))
	done := make(chan Sample)
	go func() {
		s, _ := b.Get()
		done <- s
	}()
	select {
	case <-done:
		t.Fatal("Get returned before any Put")
	case <-time.After(20 * time.Millisecond):
	}
	b.Put(mkSample(3, 7))
	select {
	case s := <-done:
		if s.SimID != 3 || s.Step != 7 {
			t.Fatalf("wrong sample %+v", s)
		}
	case <-time.After(time.Second):
		t.Fatal("Get never woke up")
	}
}

func TestBlockingPutWaitsWhenFull(t *testing.T) {
	b := NewBlocking(NewFIFO(1))
	b.Put(mkSample(0, 0))
	var second atomic.Bool
	go func() {
		b.Put(mkSample(0, 1))
		second.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if second.Load() {
		t.Fatal("Put proceeded past capacity")
	}
	if _, ok := b.Get(); !ok {
		t.Fatal("get failed")
	}
	deadline := time.Now().Add(time.Second)
	for !second.Load() {
		if time.Now().After(deadline) {
			t.Fatal("blocked Put never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBlockingGetReturnsFalseWhenDrained(t *testing.T) {
	b := NewBlocking(NewFIFO(0))
	b.Put(mkSample(0, 0))
	b.EndReception()
	if _, ok := b.Get(); !ok {
		t.Fatal("expected the stored sample")
	}
	if _, ok := b.Get(); ok {
		t.Fatal("expected drained")
	}
	if !b.Drained() {
		t.Fatal("Drained() false")
	}
}

// TestBlockingReopenReception: the elastic server ends reception to wake
// a trainer during an epoch abort, then reopens it for the next epoch —
// the flag must clear, new samples must be accepted, and a drain-by-end
// must work again afterwards.
func TestBlockingReopenReception(t *testing.T) {
	b := NewBlocking(NewFIFO(0))
	b.Put(mkSample(0, 0))
	b.EndReception()
	if _, ok := b.Get(); !ok {
		t.Fatal("expected the stored sample")
	}
	if !b.Drained() {
		t.Fatal("Drained() false after EndReception")
	}
	b.ReopenReception()
	if b.Drained() {
		t.Fatal("Drained() true after ReopenReception")
	}
	if !b.TryPut(mkSample(0, 1)) {
		t.Fatal("reopened buffer refused a sample")
	}
	b.EndReception()
	if s, ok := b.Get(); !ok || s.Step != 1 {
		t.Fatalf("got %v ok=%v, want the post-reopen sample", s, ok)
	}
	if _, ok := b.Get(); ok {
		t.Fatal("expected drained after second EndReception")
	}
}

func TestBlockingEndReceptionWakesWaiter(t *testing.T) {
	b := NewBlocking(NewFIRO(10, 5, 1))
	b.Put(mkSample(0, 0)) // below threshold: Get would block
	done := make(chan bool)
	go func() {
		_, ok := b.Get()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	b.EndReception()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("expected last sample, got drained")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken by EndReception")
	}
}

func TestBlockingGetBatch(t *testing.T) {
	b := NewBlocking(NewFIFO(0))
	for i := 0; i < 25; i++ {
		b.Put(mkSample(0, i))
	}
	b.EndReception()
	batch, ok := b.GetBatch(10)
	if !ok || len(batch) != 10 {
		t.Fatalf("batch 1: ok=%v len=%d", ok, len(batch))
	}
	batch, ok = b.GetBatch(10)
	if !ok || len(batch) != 10 {
		t.Fatalf("batch 2: ok=%v len=%d", ok, len(batch))
	}
	// Final partial batch of 5.
	batch, ok = b.GetBatch(10)
	if !ok || len(batch) != 5 {
		t.Fatalf("batch 3: ok=%v len=%d, want partial 5", ok, len(batch))
	}
	if _, ok := b.GetBatch(10); ok {
		t.Fatal("expected drained after final partial batch")
	}
}

func TestBlockingTryPut(t *testing.T) {
	b := NewBlocking(NewFIFO(1))
	if !b.TryPut(mkSample(0, 0)) {
		t.Fatal("TryPut refused with space")
	}
	if b.TryPut(mkSample(0, 1)) {
		t.Fatal("TryPut accepted at capacity")
	}
}

func TestBlockingWithLockExcludesPut(t *testing.T) {
	b := NewBlocking(NewFIFO(0))
	inCritical := make(chan struct{})
	release := make(chan struct{})
	go b.WithLock(func(Policy) {
		close(inCritical)
		<-release
	})
	<-inCritical
	putDone := make(chan struct{})
	go func() {
		b.Put(mkSample(0, 0))
		close(putDone)
	}()
	select {
	case <-putDone:
		t.Fatal("Put proceeded while WithLock held the mutex")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-putDone:
	case <-time.After(time.Second):
		t.Fatal("Put never completed after lock release")
	}
}

// TestBlockingConcurrentStress runs multiple producers and one consumer
// through a Reservoir under the race detector, checking conservation of
// the unique sample set.
func TestBlockingConcurrentStress(t *testing.T) {
	b := NewBlocking(NewReservoir(64, 16, 5))
	const producers = 4
	const perProducer = 500

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b.Put(mkSample(p, i))
			}
		}(p)
	}
	go func() {
		wg.Wait()
		b.EndReception()
	}()

	seen := map[Key]bool{}
	total := 0
	for {
		s, ok := b.Get()
		if !ok {
			break
		}
		seen[s.Key()] = true
		total++
	}
	// The Reservoir may repeat samples, but every unique key accepted must
	// appear at least once (never-drop-unseen under concurrency).
	if len(seen) != producers*perProducer {
		t.Fatalf("unique samples %d, want %d", len(seen), producers*perProducer)
	}
	if total < len(seen) {
		t.Fatalf("total %d < unique %d", total, len(seen))
	}
}
