package buffer

import "math/rand/v2"

// UniformEvict is an ablation of the Reservoir's key design choice: when
// the buffer is full, it evicts a uniformly random element — seen or not —
// instead of protecting unseen samples. It is otherwise identical to the
// Reservoir (uniform selection with replacement, threshold gate, drain on
// end of reception). The paper argues the seen-only eviction "avoids
// discarding any unseen data"; this policy quantifies what that protection
// buys (see the eviction ablation in internal/experiments).
type UniformEvict struct {
	capacity  int
	threshold int
	seen      []Sample
	notSeen   []Sample
	rng       *rand.Rand
	over      bool
	dropped   int
	onEvict   func(Sample)
}

// setOnEvict implements evictNotifier: fn observes every sample Put
// discards internally, before its storage may be reused.
func (u *UniformEvict) setOnEvict(fn func(Sample)) { u.onEvict = fn }

// UniformEvictKind selects the ablation policy in a Config.
const UniformEvictKind Kind = "UniformEvict"

// NewUniformEvict builds the ablation policy.
func NewUniformEvict(capacity, threshold int, seed uint64) *UniformEvict {
	return &UniformEvict{capacity: capacity, threshold: threshold, rng: newRNG(seed)}
}

// Name implements Policy.
func (u *UniformEvict) Name() string { return string(UniformEvictKind) }

// Put implements Policy: a full buffer evicts a uniformly random resident,
// which may be an unseen sample — that sample is then lost to training
// forever.
func (u *UniformEvict) Put(s Sample) bool {
	if u.capacity > 0 && u.Len() >= u.capacity {
		total := u.Len()
		i := u.rng.IntN(total)
		if i < len(u.notSeen) {
			if u.onEvict != nil {
				u.onEvict(u.notSeen[i])
			}
			last := len(u.notSeen) - 1
			u.notSeen[i] = u.notSeen[last]
			u.notSeen[last] = Sample{}
			u.notSeen = u.notSeen[:last]
			u.dropped++ // an unseen sample was discarded
		} else {
			i -= len(u.notSeen)
			if u.onEvict != nil {
				u.onEvict(u.seen[i])
			}
			last := len(u.seen) - 1
			u.seen[i] = u.seen[last]
			u.seen[last] = Sample{}
			u.seen = u.seen[:last]
		}
	}
	u.notSeen = append(u.notSeen, s)
	return true
}

// TryGet implements Policy with the Reservoir's selection semantics.
func (u *UniformEvict) TryGet() (Sample, bool) {
	total := u.Len()
	if total == 0 {
		return Sample{}, false
	}
	if !u.over && total <= u.threshold {
		return Sample{}, false
	}
	index := u.rng.IntN(total)
	var item Sample
	if index < len(u.notSeen) {
		item = u.notSeen[index]
		last := len(u.notSeen) - 1
		u.notSeen[index] = u.notSeen[last]
		u.notSeen[last] = Sample{}
		u.notSeen = u.notSeen[:last]
		if !u.over {
			u.seen = append(u.seen, item)
		}
	} else {
		i := index - len(u.notSeen)
		item = u.seen[i]
		if u.over {
			last := len(u.seen) - 1
			u.seen[i] = u.seen[last]
			u.seen[last] = Sample{}
			u.seen = u.seen[:last]
		}
	}
	return item, true
}

// EndReception implements Policy.
func (u *UniformEvict) EndReception() { u.over = true }

// ReopenReception implements Policy.
func (u *UniformEvict) ReopenReception() { u.over = false }

// ReceptionOver implements Policy.
func (u *UniformEvict) ReceptionOver() bool { return u.over }

// Len implements Policy.
func (u *UniformEvict) Len() int { return len(u.seen) + len(u.notSeen) }

// Capacity implements Policy.
func (u *UniformEvict) Capacity() int { return u.capacity }

// Drained implements Policy.
func (u *UniformEvict) Drained() bool { return u.over && u.Len() == 0 }

// SeenCount implements PopulationCounter.
func (u *UniformEvict) SeenCount() int { return len(u.seen) }

// UnseenCount implements PopulationCounter.
func (u *UniformEvict) UnseenCount() int { return len(u.notSeen) }

// DroppedUnseen reports how many never-trained samples were evicted — the
// data loss the real Reservoir is designed to avoid.
func (u *UniformEvict) DroppedUnseen() int { return u.dropped }
