package buffer

// Arena is a per-rank sample store: one contiguous slab of input rows and
// one of output rows, allocated in fixed-size chunks, with a free list of
// row slots. The arena-backed Blocking wrapper copies incoming payloads
// into arena rows (PutCopy), policies then shuffle Sample values whose
// Input/Output slices alias those rows, and rows return to the free list
// the moment their sample permanently leaves the policy — eviction or
// consumption — so steady-state ingestion recycles a bounded set of rows
// in place instead of allocating per message.
//
// Chunked growth matters for correctness: rows are referenced by slices
// held inside policy containers, so existing chunks must never move.
// Growing appends a new chunk and leaves every issued row valid.
type Arena struct {
	inDim, outDim int
	chunkRows     int
	chunks        []arenaChunk
	free          []int32
	rows          int
}

type arenaChunk struct {
	in, out []float32
}

// arenaChunkRows is the default allocation granularity; ~512 heat-equation
// rows ≈ 2 MB of field data per chunk.
const arenaChunkRows = 512

// NewArena builds an arena for rows of the given widths, pre-allocating
// capacity for at least initialRows (rounded up to whole chunks).
// initialRows ≤ 0 starts with one chunk.
func NewArena(initialRows, inDim, outDim int) *Arena {
	a := &Arena{inDim: inDim, outDim: outDim, chunkRows: arenaChunkRows}
	if initialRows < 1 {
		initialRows = 1
	}
	for a.rows < initialRows {
		a.grow()
	}
	return a
}

// InDim returns the input row width.
func (a *Arena) InDim() int { return a.inDim }

// OutDim returns the output row width.
func (a *Arena) OutDim() int { return a.outDim }

// Rows returns the total allocated row count.
func (a *Arena) Rows() int { return a.rows }

// FreeRows returns the number of currently unleased rows.
func (a *Arena) FreeRows() int { return len(a.free) }

// grow appends one chunk and pushes its slots onto the free list.
func (a *Arena) grow() {
	a.chunks = append(a.chunks, arenaChunk{
		in:  make([]float32, a.chunkRows*a.inDim),
		out: make([]float32, a.chunkRows*a.outDim),
	})
	base := int32(a.rows)
	for i := a.chunkRows - 1; i >= 0; i-- {
		a.free = append(a.free, base+int32(i))
	}
	a.rows += a.chunkRows
}

// alloc leases one row slot, growing the arena when the free list is
// empty. Not safe for concurrent use; the Blocking wrapper calls it under
// its mutex.
func (a *Arena) alloc() int32 {
	if len(a.free) == 0 {
		a.grow()
	}
	slot := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return slot
}

// reset returns every row to the free list without releasing the chunks.
// Only valid when no live sample aliases an arena row — i.e. right after
// the owning buffer's contents were wholesale replaced with heap-owned
// samples (Blocking.ReplaceContents).
func (a *Arena) reset() {
	a.free = a.free[:0]
	for i := a.rows - 1; i >= 0; i-- {
		a.free = append(a.free, int32(i))
	}
}

// freeSlot returns a leased row to the free list.
func (a *Arena) freeSlot(slot int32) {
	a.free = append(a.free, slot)
}

// inRow returns the input row backing a slot.
func (a *Arena) inRow(slot int32) []float32 {
	c, r := int(slot)/a.chunkRows, int(slot)%a.chunkRows
	return a.chunks[c].in[r*a.inDim : (r+1)*a.inDim : (r+1)*a.inDim]
}

// outRow returns the output row backing a slot.
func (a *Arena) outRow(slot int32) []float32 {
	c, r := int(slot)/a.chunkRows, int(slot)%a.chunkRows
	return a.chunks[c].out[r*a.outDim : (r+1)*a.outDim : (r+1)*a.outDim]
}
