package buffer

import (
	"testing"
	"testing/quick"
)

func TestFIROThresholdGate(t *testing.T) {
	f := NewFIRO(100, 5, 1)
	for i := 0; i < 5; i++ {
		f.Put(mkSample(0, i))
	}
	if _, ok := f.TryGet(); ok {
		t.Fatal("yielded at population == threshold; must exceed it")
	}
	f.Put(mkSample(0, 5))
	if _, ok := f.TryGet(); !ok {
		t.Fatal("did not yield above threshold")
	}
}

func TestFIROThresholdLiftedAtEnd(t *testing.T) {
	f := NewFIRO(100, 5, 1)
	f.Put(mkSample(0, 0))
	if _, ok := f.TryGet(); ok {
		t.Fatal("yielded below threshold")
	}
	f.EndReception()
	if _, ok := f.TryGet(); !ok {
		t.Fatal("threshold not lifted after EndReception")
	}
	if !f.Drained() {
		t.Fatal("should be drained")
	}
}

func TestFIROCapacity(t *testing.T) {
	f := NewFIRO(3, 0, 1)
	for i := 0; i < 3; i++ {
		if !f.Put(mkSample(0, i)) {
			t.Fatal("put refused below capacity")
		}
	}
	if f.Put(mkSample(0, 3)) {
		t.Fatal("put accepted at capacity")
	}
}

// TestFIROEachSampleOnce: FIRO, like FIFO, yields every sample exactly once
// (eviction on read), just in random order.
func TestFIROEachSampleOnce(t *testing.T) {
	f := NewFIRO(0, 10, 7)
	const n = 500
	for i := 0; i < n; i++ {
		f.Put(mkSample(i/100, i%100))
	}
	f.EndReception()
	counts := map[Key]int{}
	for {
		s, ok := f.TryGet()
		if !ok {
			break
		}
		counts[s.Key()]++
	}
	if len(counts) != n {
		t.Fatalf("retrieved %d unique samples, want %d", len(counts), n)
	}
	for k, c := range counts {
		if c != 1 {
			t.Fatalf("sample %v seen %d times", k, c)
		}
	}
}

// TestFIRORandomOrder checks that extraction order differs from insertion
// order (vanishingly unlikely to be identical for 100 elements).
func TestFIRORandomOrder(t *testing.T) {
	f := NewFIRO(0, 0, 42)
	const n = 100
	for i := 0; i < n; i++ {
		f.Put(mkSample(0, i))
	}
	f.EndReception()
	inOrder := true
	for i := 0; i < n; i++ {
		s, ok := f.TryGet()
		if !ok {
			t.Fatal("ran out early")
		}
		if s.Step != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("FIRO extracted in FIFO order; RNG not applied")
	}
}

func TestFIRODeterministicWithSeed(t *testing.T) {
	runOrder := func(seed uint64) []int {
		f := NewFIRO(0, 0, seed)
		for i := 0; i < 50; i++ {
			f.Put(mkSample(0, i))
		}
		f.EndReception()
		var order []int
		for {
			s, ok := f.TryGet()
			if !ok {
				break
			}
			order = append(order, s.Step)
		}
		return order
	}
	a, b, c := runOrder(5), runOrder(5), runOrder(6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical orders")
	}
}

// Property: conservation for random interleavings — after draining, the
// multiset of retrieved samples equals the multiset of inserts.
func TestFIROConservationProperty(t *testing.T) {
	f := func(ops []bool, seed uint64) bool {
		q := NewFIRO(0, 3, seed)
		put, got := map[Key]int{}, map[Key]int{}
		n := 0
		for _, isPut := range ops {
			if isPut {
				s := mkSample(0, n)
				n++
				q.Put(s)
				put[s.Key()]++
			} else if s, ok := q.TryGet(); ok {
				got[s.Key()]++
			}
		}
		q.EndReception()
		for {
			s, ok := q.TryGet()
			if !ok {
				break
			}
			got[s.Key()]++
		}
		if len(put) != len(got) {
			return false
		}
		for k, c := range put {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
