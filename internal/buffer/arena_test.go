package buffer

import (
	"testing"
)

// unseenCount reads the policy's unseen population under the lock.
func unseenCount(b *Blocking) int {
	var n int
	b.WithLock(func(p Policy) { n = p.(PopulationCounter).UnseenCount() })
	return n
}

func arenaSampleData(simID, step int, inDim, outDim int) (in, out []float32) {
	in = make([]float32, inDim)
	out = make([]float32, outDim)
	for i := range in {
		in[i] = float32(simID*1000 + step*10 + i)
	}
	for i := range out {
		out[i] = float32(simID*100000 + step*100 + i)
	}
	return in, out
}

func TestArenaPutCopyRoundTrip(t *testing.T) {
	const inDim, outDim = 3, 5
	b := NewBlockingArena(NewFIFO(0), inDim, outDim)
	for s := 1; s <= 4; s++ {
		in, out := arenaSampleData(7, s, inDim, outDim)
		if !b.PutCopy(7, s, in, out) {
			t.Fatalf("PutCopy step %d refused", s)
		}
	}
	got := 0
	n, ok := b.GetBatchEach(4, func(i int, s Sample) {
		wantIn, wantOut := arenaSampleData(7, s.Step, inDim, outDim)
		for j := range wantIn {
			if s.Input[j] != wantIn[j] {
				t.Fatalf("sample %d input[%d] = %v, want %v", i, j, s.Input[j], wantIn[j])
			}
		}
		for j := range wantOut {
			if s.Output[j] != wantOut[j] {
				t.Fatalf("sample %d output[%d] = %v, want %v", i, j, s.Output[j], wantOut[j])
			}
		}
		got++
	})
	if !ok || n != 4 || got != 4 {
		t.Fatalf("batch n=%d ok=%v got=%d", n, ok, got)
	}
}

// TestArenaRowsRecycled pins the bounded-memory property: streaming far
// more samples than the capacity through an evicting policy must reuse
// rows in place instead of growing the arena.
func TestArenaRowsRecycled(t *testing.T) {
	const inDim, outDim = 2, 4
	const capacity = 64
	b := NewBlockingArena(NewReservoir(capacity, 0, 1), inDim, outDim)
	rows := b.Arena().Rows()
	discard := func(int, Sample) {}
	for s := 1; s <= 20*capacity; s++ {
		// A Reservoir refuses Put while unseen samples alone fill the
		// capacity; a single-threaded driver must extract first (a get
		// with seen==0 always migrates one unseen sample).
		if unseenCount(b) >= capacity {
			b.GetBatchEach(1, discard)
		}
		in, out := arenaSampleData(1, s, inDim, outDim)
		b.PutCopy(1, s, in, out)
		// Interleave gets so samples migrate to "seen" and become
		// evictable; this also exercises drain-free recycling.
		if s%2 == 0 {
			b.GetBatchEach(1, discard)
		}
	}
	if got := b.Arena().Rows(); got != rows {
		t.Fatalf("arena grew from %d to %d rows; eviction must recycle in place", rows, got)
	}
	// Conservation: every row is either free or accounted to a resident
	// sample (restored heap samples aside, none here).
	resident := b.Len()
	if free := b.Arena().FreeRows(); free+resident != rows {
		t.Fatalf("row leak: %d free + %d resident != %d total", free, resident, rows)
	}
}

// TestArenaPolicySequenceUnchanged drives two identically-seeded Reservoirs
// — one with heap samples through Put/Get, one arena-backed through
// PutCopy/GetBatchEach — and requires the identical extraction sequence:
// the arena is invisible to the policy's RNG stream, keeping the paper's
// buffer statistics bit-identical.
func TestArenaPolicySequenceUnchanged(t *testing.T) {
	const inDim, outDim = 2, 3
	// Threshold 0: Get blocks below the threshold, and this test drives
	// both buffers single-threaded.
	const capacity, threshold = 32, 0
	plain := NewBlocking(NewReservoir(capacity, threshold, 99))
	arena := NewBlockingArena(NewReservoir(capacity, threshold, 99), inDim, outDim)

	var plainSeq, arenaSeq []Key
	record := func(_ int, s Sample) { arenaSeq = append(arenaSeq, s.Key()) }
	for s := 1; s <= 200; s++ {
		if unseenCount(plain) >= capacity {
			// Single-threaded: make room identically on both buffers
			// before Put would block.
			if got, ok := plain.Get(); ok {
				plainSeq = append(plainSeq, got.Key())
			}
			arena.GetBatchEach(1, record)
		}
		in, out := arenaSampleData(3, s, inDim, outDim)
		plain.Put(Sample{SimID: 3, Step: s, Input: in, Output: out})
		arena.PutCopy(3, s, in, out)
		if s%3 == 0 {
			if got, ok := plain.Get(); ok {
				plainSeq = append(plainSeq, got.Key())
			}
			arena.GetBatchEach(1, record)
		}
	}
	plain.EndReception()
	arena.EndReception()
	for {
		got, ok := plain.Get()
		if !ok {
			break
		}
		plainSeq = append(plainSeq, got.Key())
	}
	for {
		if _, ok := arena.GetBatchEach(1, record); !ok {
			break
		}
	}
	if len(plainSeq) != len(arenaSeq) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(plainSeq), len(arenaSeq))
	}
	for i := range plainSeq {
		if plainSeq[i] != arenaSeq[i] {
			t.Fatalf("extraction %d: plain %v, arena %v", i, plainSeq[i], arenaSeq[i])
		}
	}
}

// TestArenaDimMismatchFallsBack pins that odd-sized payloads are stored
// whole via the heap path rather than truncated into arena rows.
func TestArenaDimMismatchFallsBack(t *testing.T) {
	b := NewBlockingArena(NewFIFO(0), 2, 3)
	freeBefore := b.Arena().FreeRows()
	if !b.PutCopy(1, 1, []float32{1, 2, 3, 4}, []float32{5}) {
		t.Fatal("PutCopy refused")
	}
	if b.Arena().FreeRows() != freeBefore {
		t.Fatal("mismatched payload consumed an arena row")
	}
	b.GetBatchEach(1, func(_ int, s Sample) {
		if len(s.Input) != 4 || len(s.Output) != 1 || s.Input[3] != 4 || s.Output[0] != 5 {
			t.Fatalf("payload truncated: %+v", s)
		}
	})
}

// TestArenaPutDropsWhenReceptionOver mirrors the plain Put contract: a
// straggler arriving after EndReception on a full buffer is dropped, and
// its freshly-leased row must be recycled, not leaked.
func TestArenaPutDropsWhenReceptionOver(t *testing.T) {
	b := NewBlockingArena(NewFIFO(1), 2, 2)
	if !b.PutCopy(1, 1, []float32{1, 1}, []float32{1, 1}) {
		t.Fatal("first PutCopy refused")
	}
	b.EndReception()
	free := b.Arena().FreeRows()
	if b.PutCopy(1, 2, []float32{2, 2}, []float32{2, 2}) {
		t.Fatal("PutCopy accepted after EndReception on a full buffer")
	}
	if got := b.Arena().FreeRows(); got != free {
		t.Fatalf("dropped sample leaked its row: %d free, want %d", got, free)
	}
}

// TestArenaIngestZeroAllocSteadyState gates the buffer half of the
// zero-copy pipeline: steady-state PutCopy + GetBatchEach on an evicting
// Reservoir must not allocate.
func TestArenaIngestZeroAllocSteadyState(t *testing.T) {
	const inDim, outDim = 7, 256
	const capacity = 512
	b := NewBlockingArena(NewReservoir(capacity, 0, 42), inDim, outDim)
	in := make([]float32, inDim)
	out := make([]float32, outDim)
	discard := func(int, Sample) {}
	step := 0
	iter := func() {
		step++
		b.PutCopy(1, step, in, out)
		// Two gets per put keep the unseen population near capacity/2
		// (gets migrate unseen→seen with probability unseen/total), so
		// the single-threaded driver never random-walks into the
		// unseen-full wall where Put would block.
		b.GetBatchEach(2, discard)
	}
	for i := 0; i < 3*capacity; i++ { // reach eviction steady state
		iter()
	}
	if avg := testing.AllocsPerRun(1000, iter); avg != 0 {
		t.Fatalf("arena ingest allocates %.2f allocs/op, want 0", avg)
	}
}
