// Package buffer implements the training buffers at the heart of the
// paper's contribution (§3.2.3): FIFO, FIRO (First In, Random Out) and the
// Reservoir of Algorithm 1. A training buffer sits between the data
// aggregator thread, which receives simulation time steps from the ensemble
// clients, and the training thread, which extracts batches for gradient
// descent. Its job is to mitigate the bias of streamed data (inter- and
// intra-simulation ordering, finite memory) while keeping the learner busy.
//
// Policies are pure, single-threaded data structures with non-blocking
// Put/TryGet so that both the live server (through the Blocking wrapper)
// and the discrete-event cluster simulator can drive the exact same code.
//
// # Arena-backed buffers and payload ownership
//
// A plain Blocking buffer stores heap-owned samples: whoever built the
// Sample owns its payload slices, they are immutable once inserted, and
// extracted samples stay valid forever. That is the contract every
// offline/simulator path uses.
//
// NewBlockingArena instead backs the wrapper with an Arena: PutCopy bulk-
// copies an incoming payload into recycled arena rows under the buffer
// lock, policies shuffle Sample values whose slices alias those rows, and
// a row returns to the free list the moment its sample permanently leaves
// the policy — evicted on Put (the policy's onEvict hook) or consumed for
// the last time on TryGet. Because rows are reused in place, an extracted
// sample's payload is only stable while the buffer lock is held: consumers
// must use GetBatchEach, whose callback runs under the lock and must copy
// out (the trainer copies straight into its batch matrices), never the
// lock-free Get/GetBatch accessors. Snapshot deep-copies payloads for the
// same reason, so checkpoints taken from arena-backed buffers stay valid
// after the lock is released.
package buffer

import (
	"fmt"
	"math/rand/v2"
)

// Sample is one training example: the field of a single simulation time
// step together with the inputs that produced it (§4.1: "one sample being
// the time step u_t^X of one simulation associated with its 6 input
// parameters (X, t)").
type Sample struct {
	SimID int // ensemble member that produced the step
	Step  int // time-step index within the simulation
	// Input holds the surrogate inputs: the simulation parameters X
	// followed by the (normalized) time step.
	Input []float32
	// Output is the flattened discretized field u_t^X.
	Output []float32

	// slot is the arena row backing Input/Output plus one; zero marks a
	// heap-owned payload. Unexported on purpose: only the arena-backed
	// Blocking wrapper leases and recycles rows, and gob (checkpoints)
	// deliberately drops it so restored samples read as heap-owned.
	slot int32
}

// Key identifies a unique sample within an ensemble run. The server's
// fault-tolerance log deduplicates on it, and the occurrence histograms of
// Figure 3 are keyed by it.
type Key struct {
	SimID int
	Step  int
}

// Key returns the sample's identity.
func (s Sample) Key() Key { return Key{SimID: s.SimID, Step: s.Step} }

// Policy is a training-buffer algorithm. Implementations are not safe for
// concurrent use; wrap them in Blocking for the live server, or drive them
// from the single-threaded event loop of the cluster simulator.
//
// Arena contract for implementers: the arena-backed Blocking wrapper
// recycles a sample's storage when it permanently leaves the policy, and
// it detects that from the policy's observable behavior. TryGet must
// either remove the returned sample (Len decreases by exactly one) or
// leave the population unchanged (a with-replacement selection, like the
// Reservoir's); it must never remove a different sample than the one it
// returns. Any sample discarded internally by Put must be reported
// through the setOnEvict hook before its storage is forgotten. Policies
// that cannot honor this must not be wrapped with NewBlockingArena.
type Policy interface {
	// Name returns the policy name as used in the paper's tables
	// ("FIFO", "FIRO", "Reservoir").
	Name() string
	// Put offers a newly received sample. It returns false when the policy
	// cannot accept it right now (buffer full), in which case the producer
	// must retry later — the paper's "data production is suspended".
	Put(s Sample) bool
	// TryGet extracts one sample for batch construction, returning false
	// when the policy's rules (threshold, emptiness) forbid extraction.
	TryGet() (Sample, bool)
	// EndReception signals that no more data will ever arrive. Thresholds
	// are lifted so the remaining population can be drained (§3.2.3).
	EndReception()
	// ReopenReception undoes EndReception: thresholds apply again and the
	// policy accepts new samples. The elastic server needs it because an
	// aborted epoch's teardown ends reception to unblock the trainer
	// (Trainer.Run), while the rank demonstrably has more data coming.
	ReopenReception()
	// ReceptionOver reports whether EndReception has been called.
	ReceptionOver() bool
	// Len returns the number of samples currently stored.
	Len() int
	// Capacity returns the maximum number of stored samples, 0 meaning
	// unbounded.
	Capacity() int
	// Drained reports that reception is over and no sample will ever be
	// returned again; the training loop terminates on it.
	Drained() bool
}

// PopulationCounter is implemented by policies that distinguish seen from
// unseen samples; the Reservoir exposes both counts for the population
// curves of Figure 2.
type PopulationCounter interface {
	SeenCount() int
	UnseenCount() int
}

// Kind selects a buffer policy by name.
type Kind string

// The three policies evaluated in the paper.
const (
	FIFOKind      Kind = "FIFO"
	FIROKind      Kind = "FIRO"
	ReservoirKind Kind = "Reservoir"
)

// Config carries the buffer parameters used across all experiments
// (§4.3: "FIRO and Reservoir have a fixed capacity of 6,000 samples …
// with a threshold set to 1,000").
type Config struct {
	Kind      Kind
	Capacity  int
	Threshold int
	Seed      uint64
}

// New builds the configured policy.
func New(cfg Config) (Policy, error) {
	switch cfg.Kind {
	case FIFOKind:
		return NewFIFO(cfg.Capacity), nil
	case FIROKind:
		return NewFIRO(cfg.Capacity, cfg.Threshold, cfg.Seed), nil
	case ReservoirKind:
		return NewReservoir(cfg.Capacity, cfg.Threshold, cfg.Seed), nil
	case UniformEvictKind:
		return NewUniformEvict(cfg.Capacity, cfg.Threshold, cfg.Seed), nil
	default:
		return nil, fmt.Errorf("buffer: unknown kind %q", cfg.Kind)
	}
}

// newRNG builds the seeded stream used by the random policies; the paper
// seeds every stochastic component for reproducibility (§3.1).
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}
