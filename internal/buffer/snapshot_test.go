package buffer

import "testing"

func TestFIFOSnapshotRestore(t *testing.T) {
	f := NewFIFO(0)
	for i := 0; i < 5; i++ {
		f.Put(mkSample(0, i))
	}
	f.TryGet() // pop one; snapshot must reflect remaining order
	seen, unseen := f.Snapshot()
	if len(seen) != 0 || len(unseen) != 4 {
		t.Fatalf("snapshot %d/%d", len(seen), len(unseen))
	}
	g := NewFIFO(0)
	g.RestoreSnapshot(seen, unseen)
	for i := 1; i < 5; i++ {
		s, ok := g.TryGet()
		if !ok || s.Step != i {
			t.Fatalf("restored order broken at %d: %v %v", i, s.Step, ok)
		}
	}
}

func TestFIROSnapshotRestore(t *testing.T) {
	f := NewFIRO(0, 0, 1)
	for i := 0; i < 6; i++ {
		f.Put(mkSample(1, i))
	}
	_, unseen := f.Snapshot()
	if len(unseen) != 6 {
		t.Fatalf("snapshot %d", len(unseen))
	}
	g := NewFIRO(0, 0, 2)
	g.RestoreSnapshot(nil, unseen)
	g.EndReception()
	got := map[Key]bool{}
	for {
		s, ok := g.TryGet()
		if !ok {
			break
		}
		got[s.Key()] = true
	}
	if len(got) != 6 {
		t.Fatalf("restored %d unique", len(got))
	}
}

func TestReservoirSnapshotPreservesSeenSplit(t *testing.T) {
	r := NewReservoir(100, 0, 3)
	for i := 0; i < 8; i++ {
		r.Put(mkSample(2, i))
	}
	for i := 0; i < 3; i++ {
		r.TryGet() // migrate some to seen
	}
	seenBefore, unseenBefore := r.SeenCount(), r.UnseenCount()
	seen, unseen := r.Snapshot()
	if len(seen) != seenBefore || len(unseen) != unseenBefore {
		t.Fatalf("snapshot %d/%d, state %d/%d", len(seen), len(unseen), seenBefore, unseenBefore)
	}

	g := NewReservoir(100, 0, 4)
	g.RestoreSnapshot(seen, unseen)
	if g.SeenCount() != seenBefore || g.UnseenCount() != unseenBefore {
		t.Fatalf("restore lost the split: %d/%d", g.SeenCount(), g.UnseenCount())
	}
	// Snapshot is a copy: mutating the restored buffer must not affect
	// the original.
	g.EndReception()
	for {
		if _, ok := g.TryGet(); !ok {
			break
		}
	}
	if r.Len() != seenBefore+unseenBefore {
		t.Fatal("restore aliased the original storage")
	}
}
