package buffer

import (
	"testing"
	"testing/quick"
)

func mkSample(sim, step int) Sample {
	return Sample{SimID: sim, Step: step, Input: []float32{float32(sim), float32(step)}}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(0)
	for i := 0; i < 10; i++ {
		if !f.Put(mkSample(0, i)) {
			t.Fatalf("put %d refused", i)
		}
	}
	for i := 0; i < 10; i++ {
		s, ok := f.TryGet()
		if !ok || s.Step != i {
			t.Fatalf("get %d: ok=%v step=%d", i, ok, s.Step)
		}
	}
	if _, ok := f.TryGet(); ok {
		t.Fatal("empty FIFO yielded a sample")
	}
}

func TestFIFOCapacity(t *testing.T) {
	f := NewFIFO(2)
	if !f.Put(mkSample(0, 0)) || !f.Put(mkSample(0, 1)) {
		t.Fatal("puts within capacity refused")
	}
	if f.Put(mkSample(0, 2)) {
		t.Fatal("put beyond capacity accepted")
	}
	if _, ok := f.TryGet(); !ok {
		t.Fatal("get failed")
	}
	if !f.Put(mkSample(0, 2)) {
		t.Fatal("put after get refused")
	}
	if f.Capacity() != 2 {
		t.Fatal("capacity accessor wrong")
	}
}

func TestFIFOYieldsImmediately(t *testing.T) {
	// "Batch extraction is enabled as soon as the buffer can provide one."
	f := NewFIFO(100)
	f.Put(mkSample(1, 1))
	if _, ok := f.TryGet(); !ok {
		t.Fatal("FIFO must yield with a single stored sample")
	}
}

func TestFIFODrained(t *testing.T) {
	f := NewFIFO(0)
	f.Put(mkSample(0, 0))
	if f.Drained() {
		t.Fatal("drained before EndReception")
	}
	f.EndReception()
	if !f.ReceptionOver() {
		t.Fatal("ReceptionOver false")
	}
	if f.Drained() {
		t.Fatal("drained while non-empty")
	}
	f.TryGet()
	if !f.Drained() {
		t.Fatal("not drained after emptying")
	}
}

func TestFIFOCompaction(t *testing.T) {
	// Interleave puts and gets past the compaction trigger and verify
	// ordering is preserved throughout.
	f := NewFIFO(0)
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			f.Put(mkSample(0, next))
			next++
		}
		for i := 0; i < 15; i++ {
			s, ok := f.TryGet()
			if !ok || s.Step != expect {
				t.Fatalf("round %d: got step %d ok=%v, want %d", round, s.Step, ok, expect)
			}
			expect++
		}
	}
	for {
		s, ok := f.TryGet()
		if !ok {
			break
		}
		if s.Step != expect {
			t.Fatalf("drain: got %d want %d", s.Step, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("lost samples: drained %d, put %d", expect, next)
	}
}

// Property: FIFO conserves samples — everything put comes out exactly once,
// in order, regardless of interleaving pattern.
func TestFIFOConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewFIFO(0)
		putCount, getCount := 0, 0
		for _, isPut := range ops {
			if isPut {
				q.Put(mkSample(0, putCount))
				putCount++
			} else if s, ok := q.TryGet(); ok {
				if s.Step != getCount {
					return false
				}
				getCount++
			}
		}
		for {
			s, ok := q.TryGet()
			if !ok {
				break
			}
			if s.Step != getCount {
				return false
			}
			getCount++
		}
		return getCount == putCount && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
