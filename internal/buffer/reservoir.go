package buffer

import "math/rand/v2"

// Reservoir implements Algorithm 1, the paper's key contribution. It
// distinguishes samples that have already been selected into a batch
// ("seen") from newly received ones ("unseen"):
//
//   - Get selects uniformly over both lists (with replacement across
//     batches), migrating unseen samples to the seen list; so data can be
//     repeated to keep the learner busy when production lags, while no
//     unseen sample is ever discarded.
//   - Put blocks only while the buffer is entirely full of unseen samples;
//     when full otherwise, a random *seen* sample is evicted, giving
//     priority to fresh data.
//   - A threshold delays the first batches until the population is diverse
//     enough; it is lifted when reception ends, and the buffer then drains
//     to empty (samples are deleted upon selection).
//
// The split between seen and unseen space is regulated dynamically by the
// incoming flow, avoiding the static split a dual buffer would need
// (§3.2.3).
type Reservoir struct {
	capacity  int
	threshold int
	seen      []Sample
	notSeen   []Sample
	rng       *rand.Rand
	over      bool
	onEvict   func(Sample)
}

// setOnEvict implements evictNotifier: fn observes every sample Put
// discards internally, before its storage may be reused.
func (r *Reservoir) setOnEvict(fn func(Sample)) { r.onEvict = fn }

// NewReservoir builds a Reservoir with the given capacity and extraction
// threshold, using the seeded RNG stream for uniform selection.
func NewReservoir(capacity, threshold int, seed uint64) *Reservoir {
	return &Reservoir{capacity: capacity, threshold: threshold, rng: newRNG(seed)}
}

// Name implements Policy.
func (r *Reservoir) Name() string { return string(ReservoirKind) }

// Put implements Policy, following Algorithm 1 lines 19–29: it refuses
// (the producer waits) while unseen samples alone fill the capacity, evicts
// one random seen sample if the buffer is full, then appends the new sample
// to the unseen list.
func (r *Reservoir) Put(s Sample) bool {
	if r.capacity > 0 && len(r.notSeen) >= r.capacity {
		return false // block until one element gets seen
	}
	if r.capacity > 0 && len(r.notSeen)+len(r.seen) >= r.capacity {
		// Evict one seen element at random to make room.
		i := r.rng.IntN(len(r.seen))
		if r.onEvict != nil {
			r.onEvict(r.seen[i])
		}
		last := len(r.seen) - 1
		r.seen[i] = r.seen[last]
		r.seen[last] = Sample{}
		r.seen = r.seen[:last]
	}
	r.notSeen = append(r.notSeen, s)
	return true
}

// TryGet implements Policy, following Algorithm 1 lines 1–18. Selection is
// uniform over seen+unseen, with replacement: a selected unseen sample
// migrates to the seen list (unless reception is over, in which case the
// buffer is draining); a selected seen sample is returned again, or removed
// while draining.
func (r *Reservoir) TryGet() (Sample, bool) {
	total := len(r.seen) + len(r.notSeen)
	if total == 0 {
		return Sample{}, false
	}
	if !r.over && total <= r.threshold {
		// Ensure there are enough data for diverse batches and to avoid
		// over-representing the very first time steps.
		return Sample{}, false
	}
	index := r.rng.IntN(total)
	var item Sample
	if index < len(r.notSeen) {
		item = r.notSeen[index]
		last := len(r.notSeen) - 1
		r.notSeen[index] = r.notSeen[last]
		r.notSeen[last] = Sample{}
		r.notSeen = r.notSeen[:last]
		if !r.over {
			r.seen = append(r.seen, item)
		}
	} else {
		i := index - len(r.notSeen)
		item = r.seen[i]
		if r.over {
			// Empty the buffer: after reception, every selection deletes.
			last := len(r.seen) - 1
			r.seen[i] = r.seen[last]
			r.seen[last] = Sample{}
			r.seen = r.seen[:last]
		}
	}
	return item, true
}

// EndReception implements Policy: the threshold gate is lifted and the
// buffer switches to draining behaviour.
func (r *Reservoir) EndReception() { r.over = true }

// ReopenReception implements Policy.
func (r *Reservoir) ReopenReception() { r.over = false }

// ReceptionOver implements Policy.
func (r *Reservoir) ReceptionOver() bool { return r.over }

// Len implements Policy.
func (r *Reservoir) Len() int { return len(r.seen) + len(r.notSeen) }

// Capacity implements Policy.
func (r *Reservoir) Capacity() int { return r.capacity }

// Drained implements Policy.
func (r *Reservoir) Drained() bool { return r.over && r.Len() == 0 }

// SeenCount implements PopulationCounter.
func (r *Reservoir) SeenCount() int { return len(r.seen) }

// UnseenCount implements PopulationCounter.
func (r *Reservoir) UnseenCount() int { return len(r.notSeen) }
