package buffer

import "sync"

// Blocking wraps a Policy with the thread-safe, blocking semantics the live
// server needs: the data-aggregator goroutine calls Put (blocking while the
// policy refuses, i.e. the buffer is full), and the training goroutine
// calls Get or GetBatch (blocking below threshold). It mirrors the
// lock/wait structure of Algorithm 1.
type Blocking struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	p        Policy
	arena    *Arena
	onRetire func(Sample)
}

// evictNotifier is implemented by policies that discard samples internally
// on Put (Reservoir, UniformEvict); the arena-backed wrapper registers a
// hook to recycle the discarded rows.
type evictNotifier interface {
	setOnEvict(fn func(Sample))
}

// NewBlocking wraps p. The wrapper owns p; callers must not touch it
// directly afterwards except through WithLock.
func NewBlocking(p Policy) *Blocking {
	b := &Blocking{p: p}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

// NewBlockingArena wraps p with a sample arena for rows of the given
// widths: PutCopy copies payloads into recycled rows and extraction must
// go through GetBatchEach (see the package comment's ownership contract).
// The arena is sized to the policy capacity plus slack, growing in chunks
// if a policy (e.g. unbounded FIFO) outgrows it.
func NewBlockingArena(p Policy, inDim, outDim int) *Blocking {
	b := NewBlocking(p)
	rows := p.Capacity()
	if rows <= 0 {
		rows = arenaChunkRows
	}
	// One extra chunk of slack: rows stay leased briefly between a
	// policy eviction and the recycle hook, and heap-backed restores may
	// mix in.
	b.arena = NewArena(rows+arenaChunkRows, inDim, outDim)
	if ev, ok := p.(evictNotifier); ok {
		ev.setOnEvict(b.recycleSample)
	}
	return b
}

// Arena exposes the backing arena (nil for plain buffers); the server's
// ingestion gates use it to assert row recycling.
func (b *Blocking) Arena() *Arena { return b.arena }

// OnRetire registers a callback invoked — under the buffer lock, just
// before the arena row is recycled — for every sample that permanently
// leaves the buffer through GetBatchEach (FIFO/FIRO pop, Reservoir
// drain-mode removal). The callback must deep-copy any payload it keeps:
// the sample's Input/Output may alias an arena row that is overwritten by
// the next PutCopy. The elastic server uses it to journal consumed samples
// for replay after a group rollback, since a sample consumed after the
// last group checkpoint would otherwise be lost to the restored epoch.
// Pass nil to unregister.
func (b *Blocking) OnRetire(fn func(Sample)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onRetire = fn
}

// recycleSample returns an arena-backed sample's row to the free list. It
// must run under b.mu (policy hooks fire inside Put/TryGet, which the
// wrapper always calls locked).
func (b *Blocking) recycleSample(s Sample) {
	if b.arena != nil && s.slot > 0 {
		b.arena.freeSlot(s.slot - 1)
	}
}

// PutCopy inserts one sample by bulk-copying its payload into arena rows
// under the lock, blocking while the policy refuses (buffer full). The
// caller keeps ownership of input/output and may recycle them immediately
// after return. Payloads whose widths differ from the arena's fall back to
// a heap copy so nothing is silently truncated. It reports false when the
// sample was dropped because reception ended while waiting.
func (b *Blocking) PutCopy(simID, step int, input, output []float32) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Sample{SimID: simID, Step: step}
	if b.arena != nil && len(input) == b.arena.inDim && len(output) == b.arena.outDim {
		slot := b.arena.alloc()
		s.Input = b.arena.inRow(slot)
		s.Output = b.arena.outRow(slot)
		s.slot = slot + 1
		copy(s.Input, input)
		copy(s.Output, output)
	} else {
		s.Input = append([]float32(nil), input...)
		s.Output = append([]float32(nil), output...)
	}
	for !b.p.Put(s) {
		if b.p.ReceptionOver() {
			b.recycleSample(s)
			return false
		}
		b.notFull.Wait()
	}
	b.notEmpty.Signal()
	return true
}

// GetBatchEach extracts up to n samples, invoking fn(i, s) for the i-th
// one while the buffer lock is held. fn must copy what it needs out of s
// and must not call back into the buffer: as soon as fn returns, a sample
// that permanently left the policy has its arena row recycled and a later
// PutCopy may overwrite the payload. Like GetBatch it blocks until n
// samples were delivered or the buffer drained, returning the count and
// ok=false only when the buffer drained before yielding any sample.
func (b *Blocking) GetBatchEach(n int, fn func(i int, s Sample)) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	count := 0
	for count < n {
		before := b.p.Len()
		s, ok := b.p.TryGet()
		if !ok {
			if b.p.Drained() {
				break
			}
			b.notEmpty.Wait()
			continue
		}
		fn(count, s)
		if b.p.Len() < before {
			// The sample will never be returned again (FIFO/FIRO pop,
			// Reservoir drain-mode removal): journal it for rollback
			// replay if asked, then its row is free.
			if b.onRetire != nil {
				b.onRetire(s)
			}
			b.recycleSample(s)
		}
		b.notFull.Signal()
		count++
	}
	if count == 0 {
		return 0, false
	}
	return count, true
}

// ReplaceContents atomically rewrites the buffer's population: fn receives
// a deep-copied snapshot of the current contents and returns the new ones,
// all under the buffer lock, so no concurrent PutCopy can slip a sample in
// between the read and the restore (it would be wiped, yet already marked
// in the caller's dedup state — a lost sample). The returned samples must
// be heap-owned (snapshot entries and fresh copies both are; any stale
// arena linkage is severed here). Unlike a bare RestoreSnapshot through
// WithLock, ReplaceContents also resets the backing arena: the previous
// contents are dropped wholesale, so no live sample aliases an arena row
// and every row returns to the free list instead of leaking. The elastic
// server uses it to rebuild a rank's buffer after a group rollback (replay
// journal ++ live contents). The reception flag is untouched. It reports
// false — without calling fn — when the policy cannot snapshot/restore.
func (b *Blocking) ReplaceContents(fn func(seen, unseen []Sample) (newSeen, newUnseen []Sample)) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	sn, ok := b.p.(Snapshotter)
	if !ok {
		return false
	}
	seen, unseen := sn.Snapshot()
	seen, unseen = fn(seen, unseen)
	for i := range seen {
		seen[i].slot = 0
	}
	for i := range unseen {
		unseen[i].slot = 0
	}
	sn.RestoreSnapshot(seen, unseen)
	if b.arena != nil {
		b.arena.reset()
	}
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
	return true
}

// Put inserts s, blocking while the policy refuses it (buffer full). If
// reception has ended while waiting — e.g. a cancelled run still has
// stragglers in flight — the sample is dropped instead of blocking the
// aggregator forever.
func (b *Blocking) Put(s Sample) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.p.Put(s) {
		if b.p.ReceptionOver() {
			return
		}
		b.notFull.Wait()
	}
	b.notEmpty.Signal()
}

// TryPut inserts s without blocking, reporting whether it was accepted.
func (b *Blocking) TryPut(s Sample) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.p.Put(s) {
		return false
	}
	b.notEmpty.Signal()
	return true
}

// Get extracts one sample, blocking until the policy can yield one. It
// returns ok=false only when the buffer is drained (reception over and
// empty), which terminates training (§3.2.3: "When the reception is over
// and the buffer is empty, the training terminates"). Do not use on
// arena-backed buffers: the returned payload may alias a recycled row.
// Use GetBatchEach, whose callback runs under the lock.
func (b *Blocking) Get() (Sample, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if s, ok := b.p.TryGet(); ok {
			b.notFull.Signal()
			return s, true
		}
		if b.p.Drained() {
			return Sample{}, false
		}
		b.notEmpty.Wait()
	}
}

// GetBatch extracts up to n samples, blocking as needed. It returns
// ok=false only when the buffer drained before yielding any sample; a
// shorter final batch is returned with ok=true while draining.
func (b *Blocking) GetBatch(n int) ([]Sample, bool) {
	return b.GetBatchInto(make([]Sample, 0, n), n)
}

// GetBatchInto is GetBatch assembling into dst's storage (dst is truncated
// first), so a training loop can reuse one batch slice across steps and
// assemble batches without allocating. The returned slice aliases dst when
// capacity suffices.
func (b *Blocking) GetBatchInto(dst []Sample, n int) ([]Sample, bool) {
	batch := dst[:0]
	for len(batch) < n {
		s, ok := b.Get()
		if !ok {
			break
		}
		batch = append(batch, s)
	}
	if len(batch) == 0 {
		return nil, false
	}
	return batch, true
}

// EndReception lifts thresholds and wakes every waiter so producers and the
// trainer can observe the final state.
func (b *Blocking) EndReception() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.p.EndReception()
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}

// ReopenReception undoes EndReception: thresholds apply again and new
// samples are accepted. The elastic server calls it when an aborted
// epoch's teardown ended reception to unblock the trainer while the
// rank's aggregator knows more data is still owed.
func (b *Blocking) ReopenReception() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.p.ReopenReception()
}

// Len reports the current population.
func (b *Blocking) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.p.Len()
}

// Drained reports whether the buffer will never yield again.
func (b *Blocking) Drained() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.p.Drained()
}

// WithLock runs fn while holding the buffer mutex, excluding concurrent
// Puts and Gets. The paper's validation protocol uses exactly this: "During
// validation, new entries in the buffer are blocked by acquiring its mutex"
// (§4.4), while incoming data accumulate in the transport queue.
func (b *Blocking) WithLock(fn func(p Policy)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(b.p)
	// State may have changed (e.g. checkpoint restore refilled it).
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}
