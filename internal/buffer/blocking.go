package buffer

import "sync"

// Blocking wraps a Policy with the thread-safe, blocking semantics the live
// server needs: the data-aggregator goroutine calls Put (blocking while the
// policy refuses, i.e. the buffer is full), and the training goroutine
// calls Get or GetBatch (blocking below threshold). It mirrors the
// lock/wait structure of Algorithm 1.
type Blocking struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	p        Policy
}

// NewBlocking wraps p. The wrapper owns p; callers must not touch it
// directly afterwards except through WithLock.
func NewBlocking(p Policy) *Blocking {
	b := &Blocking{p: p}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

// Put inserts s, blocking while the policy refuses it (buffer full). If
// reception has ended while waiting — e.g. a cancelled run still has
// stragglers in flight — the sample is dropped instead of blocking the
// aggregator forever.
func (b *Blocking) Put(s Sample) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.p.Put(s) {
		if b.p.ReceptionOver() {
			return
		}
		b.notFull.Wait()
	}
	b.notEmpty.Signal()
}

// TryPut inserts s without blocking, reporting whether it was accepted.
func (b *Blocking) TryPut(s Sample) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.p.Put(s) {
		return false
	}
	b.notEmpty.Signal()
	return true
}

// Get extracts one sample, blocking until the policy can yield one. It
// returns ok=false only when the buffer is drained (reception over and
// empty), which terminates training (§3.2.3: "When the reception is over
// and the buffer is empty, the training terminates").
func (b *Blocking) Get() (Sample, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if s, ok := b.p.TryGet(); ok {
			b.notFull.Signal()
			return s, true
		}
		if b.p.Drained() {
			return Sample{}, false
		}
		b.notEmpty.Wait()
	}
}

// GetBatch extracts up to n samples, blocking as needed. It returns
// ok=false only when the buffer drained before yielding any sample; a
// shorter final batch is returned with ok=true while draining.
func (b *Blocking) GetBatch(n int) ([]Sample, bool) {
	return b.GetBatchInto(make([]Sample, 0, n), n)
}

// GetBatchInto is GetBatch assembling into dst's storage (dst is truncated
// first), so a training loop can reuse one batch slice across steps and
// assemble batches without allocating. The returned slice aliases dst when
// capacity suffices.
func (b *Blocking) GetBatchInto(dst []Sample, n int) ([]Sample, bool) {
	batch := dst[:0]
	for len(batch) < n {
		s, ok := b.Get()
		if !ok {
			break
		}
		batch = append(batch, s)
	}
	if len(batch) == 0 {
		return nil, false
	}
	return batch, true
}

// EndReception lifts thresholds and wakes every waiter so producers and the
// trainer can observe the final state.
func (b *Blocking) EndReception() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.p.EndReception()
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}

// Len reports the current population.
func (b *Blocking) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.p.Len()
}

// Drained reports whether the buffer will never yield again.
func (b *Blocking) Drained() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.p.Drained()
}

// WithLock runs fn while holding the buffer mutex, excluding concurrent
// Puts and Gets. The paper's validation protocol uses exactly this: "During
// validation, new entries in the buffer are blocked by acquiring its mutex"
// (§4.4), while incoming data accumulate in the transport queue.
func (b *Blocking) WithLock(fn func(p Policy)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(b.p)
	// State may have changed (e.g. checkpoint restore refilled it).
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}
