package buffer

// Snapshotter is implemented by policies that can export and re-import
// their contents, used by server checkpointing (§3.1: the checkpoint must
// capture buffered-but-untrained samples so a restarted server resumes
// without losing them).
type Snapshotter interface {
	// Snapshot returns deep copies of the stored samples: payload slices
	// are cloned, so the snapshot stays valid after the buffer lock is
	// released even for arena-backed buffers whose rows are recycled in
	// place. For policies without a seen/unseen distinction everything is
	// reported as unseen.
	Snapshot() (seen, unseen []Sample)
	// RestoreSnapshot replaces the policy contents. The restored samples
	// are heap-owned (no arena rows). The reception flag is not part of
	// the snapshot; callers re-derive it from their own state.
	RestoreSnapshot(seen, unseen []Sample)
}

// cloneSamples deep-copies samples, detaching payloads from any arena rows
// backing them.
func cloneSamples(src []Sample) []Sample {
	out := make([]Sample, len(src))
	for i, s := range src {
		out[i] = Sample{
			SimID:  s.SimID,
			Step:   s.Step,
			Input:  append([]float32(nil), s.Input...),
			Output: append([]float32(nil), s.Output...),
		}
	}
	return out
}

// Snapshot implements Snapshotter.
func (f *FIFO) Snapshot() (seen, unseen []Sample) {
	return nil, cloneSamples(f.queue[f.head:])
}

// RestoreSnapshot implements Snapshotter. Seen samples are prepended: FIFO
// has no seen state, so they are treated as pending data.
func (f *FIFO) RestoreSnapshot(seen, unseen []Sample) {
	f.queue = append(append([]Sample(nil), seen...), unseen...)
	f.head = 0
}

// Snapshot implements Snapshotter.
func (f *FIRO) Snapshot() (seen, unseen []Sample) {
	return nil, cloneSamples(f.items)
}

// RestoreSnapshot implements Snapshotter.
func (f *FIRO) RestoreSnapshot(seen, unseen []Sample) {
	f.items = append(append([]Sample(nil), seen...), unseen...)
}

// Snapshot implements Snapshotter.
func (r *Reservoir) Snapshot() (seen, unseen []Sample) {
	return cloneSamples(r.seen), cloneSamples(r.notSeen)
}

// RestoreSnapshot implements Snapshotter, preserving the seen/unseen split
// so eviction priorities survive a server restart.
func (r *Reservoir) RestoreSnapshot(seen, unseen []Sample) {
	r.seen = append([]Sample(nil), seen...)
	r.notSeen = append([]Sample(nil), unseen...)
}
