package buffer

// Snapshotter is implemented by policies that can export and re-import
// their contents, used by server checkpointing (§3.1: the checkpoint must
// capture buffered-but-untrained samples so a restarted server resumes
// without losing them).
type Snapshotter interface {
	// Snapshot returns copies of the stored samples. For policies without
	// a seen/unseen distinction everything is reported as unseen.
	Snapshot() (seen, unseen []Sample)
	// RestoreSnapshot replaces the policy contents. The reception flag is
	// not part of the snapshot; callers re-derive it from their own state.
	RestoreSnapshot(seen, unseen []Sample)
}

// Snapshot implements Snapshotter.
func (f *FIFO) Snapshot() (seen, unseen []Sample) {
	out := make([]Sample, f.Len())
	copy(out, f.queue[f.head:])
	return nil, out
}

// RestoreSnapshot implements Snapshotter. Seen samples are prepended: FIFO
// has no seen state, so they are treated as pending data.
func (f *FIFO) RestoreSnapshot(seen, unseen []Sample) {
	f.queue = append(append([]Sample(nil), seen...), unseen...)
	f.head = 0
}

// Snapshot implements Snapshotter.
func (f *FIRO) Snapshot() (seen, unseen []Sample) {
	out := make([]Sample, len(f.items))
	copy(out, f.items)
	return nil, out
}

// RestoreSnapshot implements Snapshotter.
func (f *FIRO) RestoreSnapshot(seen, unseen []Sample) {
	f.items = append(append([]Sample(nil), seen...), unseen...)
}

// Snapshot implements Snapshotter.
func (r *Reservoir) Snapshot() (seen, unseen []Sample) {
	seen = make([]Sample, len(r.seen))
	copy(seen, r.seen)
	unseen = make([]Sample, len(r.notSeen))
	copy(unseen, r.notSeen)
	return seen, unseen
}

// RestoreSnapshot implements Snapshotter, preserving the seen/unseen split
// so eviction priorities survive a server restart.
func (r *Reservoir) RestoreSnapshot(seen, unseen []Sample) {
	r.seen = append([]Sample(nil), seen...)
	r.notSeen = append([]Sample(nil), unseen...)
}
