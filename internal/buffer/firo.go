package buffer

import "math/rand/v2"

// FIRO (First In, Random Out) behaves like FIFO with eviction-on-read from
// a random position, which de-biases batches (§3.2.3). Extraction is gated
// by a fill threshold that is dropped to zero once data production ends, so
// the last produced samples can still be consumed. Each sample is seen
// exactly once, like FIFO.
type FIRO struct {
	capacity  int
	threshold int
	items     []Sample
	rng       *rand.Rand
	over      bool
}

// NewFIRO builds a FIRO buffer. Extraction requires the population to
// exceed threshold until EndReception is called.
func NewFIRO(capacity, threshold int, seed uint64) *FIRO {
	return &FIRO{capacity: capacity, threshold: threshold, rng: newRNG(seed)}
}

// Name implements Policy.
func (f *FIRO) Name() string { return string(FIROKind) }

// Put implements Policy. Newly received samples are appended at the end of
// the list container, as in the paper's implementation.
func (f *FIRO) Put(s Sample) bool {
	if f.capacity > 0 && len(f.items) >= f.capacity {
		return false
	}
	f.items = append(f.items, s)
	return true
}

// TryGet implements Policy: a uniformly random element is removed and
// returned, provided the population exceeds the threshold (or reception is
// over).
func (f *FIRO) TryGet() (Sample, bool) {
	if len(f.items) == 0 {
		return Sample{}, false
	}
	if !f.over && len(f.items) <= f.threshold {
		return Sample{}, false
	}
	i := f.rng.IntN(len(f.items))
	s := f.items[i]
	last := len(f.items) - 1
	f.items[i] = f.items[last]
	f.items[last] = Sample{}
	f.items = f.items[:last]
	return s, true
}

// EndReception implements Policy: "The threshold is set to zero once data
// production is over to enable consuming the last produced data."
func (f *FIRO) EndReception() { f.over = true }

// ReopenReception implements Policy.
func (f *FIRO) ReopenReception() { f.over = false }

// ReceptionOver implements Policy.
func (f *FIRO) ReceptionOver() bool { return f.over }

// Len implements Policy.
func (f *FIRO) Len() int { return len(f.items) }

// Capacity implements Policy.
func (f *FIRO) Capacity() int { return f.capacity }

// Drained implements Policy.
func (f *FIRO) Drained() bool { return f.over && len(f.items) == 0 }
