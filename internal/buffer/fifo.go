package buffer

// FIFO is the streaming baseline (§3.2.3): samples are batched for training
// in exactly the order they are received, each seen once and only once.
// Batch extraction is possible as soon as a single sample is available;
// production is suspended when the queue is full.
type FIFO struct {
	capacity int
	queue    []Sample
	head     int // index of the next sample to pop; storage is compacted lazily
	over     bool
}

// NewFIFO builds a FIFO buffer with the given capacity (0 = unbounded).
func NewFIFO(capacity int) *FIFO {
	return &FIFO{capacity: capacity}
}

// Name implements Policy.
func (f *FIFO) Name() string { return string(FIFOKind) }

// Put implements Policy.
func (f *FIFO) Put(s Sample) bool {
	if f.capacity > 0 && f.Len() >= f.capacity {
		return false
	}
	f.queue = append(f.queue, s)
	return true
}

// TryGet implements Policy.
func (f *FIFO) TryGet() (Sample, bool) {
	if f.head >= len(f.queue) {
		return Sample{}, false
	}
	s := f.queue[f.head]
	f.queue[f.head] = Sample{} // release references for GC
	f.head++
	// Compact once the dead prefix dominates, keeping Put amortized O(1).
	if f.head > 64 && f.head*2 >= len(f.queue) {
		n := copy(f.queue, f.queue[f.head:])
		for i := n; i < len(f.queue); i++ {
			f.queue[i] = Sample{}
		}
		f.queue = f.queue[:n]
		f.head = 0
	}
	return s, true
}

// EndReception implements Policy.
func (f *FIFO) EndReception() { f.over = true }

// ReopenReception implements Policy.
func (f *FIFO) ReopenReception() { f.over = false }

// ReceptionOver implements Policy.
func (f *FIFO) ReceptionOver() bool { return f.over }

// Len implements Policy.
func (f *FIFO) Len() int { return len(f.queue) - f.head }

// Capacity implements Policy.
func (f *FIFO) Capacity() int { return f.capacity }

// Drained implements Policy.
func (f *FIFO) Drained() bool { return f.over && f.Len() == 0 }
