package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func inUnitCube(p []float64) bool {
	for _, v := range p {
		if v < 0 || v >= 1 {
			return false
		}
	}
	return true
}

func TestMonteCarloRangeAndDeterminism(t *testing.T) {
	a := NewMonteCarlo(5, 7)
	b := NewMonteCarlo(5, 7)
	c := NewMonteCarlo(5, 8)
	differs := false
	for i := 0; i < 100; i++ {
		pa, pb, pc := a.Next(), b.Next(), c.Next()
		if !inUnitCube(pa) {
			t.Fatalf("point outside unit cube: %v", pa)
		}
		for d := range pa {
			if pa[d] != pb[d] {
				t.Fatal("same seed diverged")
			}
			if pa[d] != pc[d] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical streams")
	}
	if a.Dim() != 5 {
		t.Fatal("dim wrong")
	}
}

func TestMonteCarloRoughUniformity(t *testing.T) {
	m := NewMonteCarlo(1, 3)
	const n = 20000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := m.Next()[0]
		sum += v
		buckets[int(v*10)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > 0.1*n/10 {
			t.Fatalf("bucket %d count %d deviates >10%%", i, c)
		}
	}
}

func TestHaltonKnownPrefix(t *testing.T) {
	// Base 2 (dim 0): 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, 7/8 …
	// Base 3 (dim 1): 1/3, 2/3, 1/9, 4/9, 7/9, 2/9, 5/9 …
	h := NewHalton(2)
	wantB2 := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875}
	wantB3 := []float64{1. / 3, 2. / 3, 1. / 9, 4. / 9, 7. / 9, 2. / 9, 5. / 9}
	for i := range wantB2 {
		p := h.Next()
		if math.Abs(p[0]-wantB2[i]) > 1e-12 || math.Abs(p[1]-wantB3[i]) > 1e-12 {
			t.Fatalf("point %d = %v, want (%v, %v)", i, p, wantB2[i], wantB3[i])
		}
	}
}

func TestHaltonSkip(t *testing.T) {
	a := NewHalton(2)
	a.Skip(3)
	b := NewHalton(2)
	for i := 0; i < 3; i++ {
		b.Next()
	}
	pa, pb := a.Next(), b.Next()
	for d := range pa {
		if pa[d] != pb[d] {
			t.Fatal("Skip(3) differs from three Next() calls")
		}
	}
}

func TestHaltonLowDiscrepancy(t *testing.T) {
	// The first n Halton points in 1D fill [0,1) far more evenly than
	// random: every interval [k/16,(k+1)/16) must contain n/16 ± 2 points.
	h := NewHalton(1)
	const n = 256
	counts := make([]int, 16)
	for i := 0; i < n; i++ {
		counts[int(h.Next()[0]*16)]++
	}
	for i, c := range counts {
		if c < n/16-2 || c > n/16+2 {
			t.Fatalf("interval %d has %d points, want %d±2", i, c, n/16)
		}
	}
}

func TestFirstPrimes(t *testing.T) {
	want := []int{2, 3, 5, 7, 11, 13, 17}
	got := firstPrimes(7)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("primes %v, want %v", got, want)
		}
	}
}

func TestLHSStratification(t *testing.T) {
	// Within one block of n points every dimension must place exactly one
	// point in each stratum — the defining Latin hypercube property.
	const dim, n = 4, 16
	l := NewLatinHypercube(dim, n, 11)
	points := make([][]float64, n)
	for i := range points {
		points[i] = l.Next()
	}
	for d := 0; d < dim; d++ {
		seen := make([]bool, n)
		for _, p := range points {
			k := int(p[d] * n)
			if k < 0 || k >= n {
				t.Fatalf("point outside unit cube: %v", p[d])
			}
			if seen[k] {
				t.Fatalf("dim %d stratum %d hit twice", d, k)
			}
			seen[k] = true
		}
	}
}

func TestLHSRegeneratesBlocks(t *testing.T) {
	l := NewLatinHypercube(2, 4, 5)
	if l.BlockSize() != 4 {
		t.Fatal("block size")
	}
	// Draw three full blocks; each must be stratified independently.
	for block := 0; block < 3; block++ {
		seen := make([]bool, 4)
		for i := 0; i < 4; i++ {
			p := l.Next()
			k := int(p[0] * 4)
			if seen[k] {
				t.Fatalf("block %d: stratum %d repeated", block, k)
			}
			seen[k] = true
		}
	}
}

func TestLHSDeterministic(t *testing.T) {
	a, b := NewLatinHypercube(3, 8, 9), NewLatinHypercube(3, 8, 9)
	for i := 0; i < 20; i++ {
		pa, pb := a.Next(), b.Next()
		for d := range pa {
			if pa[d] != pb[d] {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestSpaceScaleNormalize(t *testing.T) {
	s, err := NewSpace([]float64{100, 0}, []float64{500, 10})
	if err != nil {
		t.Fatal(err)
	}
	x := s.Scale([]float64{0.5, 0.1})
	if x[0] != 300 || x[1] != 1 {
		t.Fatalf("Scale: %v", x)
	}
	u := s.Normalize(x)
	if math.Abs(u[0]-0.5) > 1e-12 || math.Abs(u[1]-0.1) > 1e-12 {
		t.Fatalf("Normalize: %v", u)
	}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace([]float64{0, 0}, []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := NewSpace([]float64{2}, []float64{1}); err == nil {
		t.Fatal("expected min>max error")
	}
}

func TestSpaceDegenerateDim(t *testing.T) {
	s, _ := NewSpace([]float64{5}, []float64{5})
	if got := s.Normalize([]float64{5}); got[0] != 0 {
		t.Fatalf("degenerate normalize: %v", got)
	}
}

func TestHeatSpace(t *testing.T) {
	s := HeatSpace()
	if s.Dim() != 5 {
		t.Fatal("heat space must be 5-dimensional")
	}
	x := s.Scale([]float64{0, 0.25, 0.5, 0.75, 1})
	want := []float64{100, 200, 300, 400, 500}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Scale: %v", x)
		}
	}
}

// Property: scaling then normalizing is the identity for any space and
// point.
func TestScaleNormalizeRoundtripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		mc := NewMonteCarlo(4, seed)
		u := mc.Next()
		s, _ := NewSpace([]float64{-3, 0, 100, 7}, []float64{5, 1, 500, 7.5})
		back := s.Normalize(s.Scale(u))
		for i := range u {
			if math.Abs(back[i]-u[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewByKind(t *testing.T) {
	for _, kind := range []Kind{MonteCarloKind, LatinHypercubeKind, HaltonKind} {
		s, err := New(kind, 3, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Dim() != 3 {
			t.Fatalf("%s: dim %d", kind, s.Dim())
		}
		if !inUnitCube(s.Next()) {
			t.Fatalf("%s: point outside cube", kind)
		}
	}
	if _, err := New("bogus", 3, 1, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestAdaptivePrefersHighScore(t *testing.T) {
	// Score favors the first coordinate; adaptive draws must have a higher
	// mean first coordinate than the base design.
	base := NewMonteCarlo(2, 3)
	ad := NewAdaptive(NewMonteCarlo(2, 3), 8, 0, 4, func(p []float64) float64 { return p[0] })
	const n = 2000
	var meanBase, meanAd float64
	for i := 0; i < n; i++ {
		meanBase += base.Next()[0]
		meanAd += ad.Next()[0]
	}
	meanBase /= n
	meanAd /= n
	if meanAd < meanBase+0.2 {
		t.Fatalf("adaptive mean %v not above base %v", meanAd, meanBase)
	}
}

func TestAdaptiveEpsilonOneIsBase(t *testing.T) {
	// ε=1 means pure exploration: stream equals the base stream.
	a := NewAdaptive(NewHalton(2), 8, 1, 5, func(p []float64) float64 { return p[0] })
	b := NewHalton(2)
	for i := 0; i < 50; i++ {
		pa, pb := a.Next(), b.Next()
		for d := range pa {
			if pa[d] != pb[d] {
				t.Fatal("ε=1 adaptive deviated from base design")
			}
		}
	}
	if a.Dim() != 2 {
		t.Fatal("dim")
	}
}

func TestAdaptiveNilScoreFallsBack(t *testing.T) {
	a := NewAdaptive(NewHalton(1), 4, 0, 1, nil)
	if !inUnitCube(a.Next()) {
		t.Fatal("point outside cube")
	}
}
