// Package sampling implements the experimental designs the framework's
// data-aggregator uses to draw simulation parameters X for each client
// (§3.1): traditional Monte Carlo, Latin hypercube, and the Halton
// sequence. An adaptive design — the paper's future-work direction (§5) —
// biases draws toward regions where the current surrogate validates worst.
//
// Samplers produce points in the unit hypercube [0,1)^d; a Space maps them
// to physical parameter ranges (the paper samples the five temperatures in
// [100, 500] K).
package sampling

import (
	"fmt"
	"math/rand/v2"
)

// Sampler generates a stream of design points in [0,1)^d.
type Sampler interface {
	// Next returns the next point. The returned slice is owned by the
	// caller.
	Next() []float64
	// Dim returns the dimensionality d.
	Dim() int
}

// Space is a box of physical parameter ranges.
type Space struct {
	Min []float64
	Max []float64
}

// NewSpace builds a Space; Min and Max must have equal lengths with
// Min[i] ≤ Max[i].
func NewSpace(min, max []float64) (Space, error) {
	if len(min) != len(max) {
		return Space{}, fmt.Errorf("sampling: min/max length mismatch %d vs %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Space{}, fmt.Errorf("sampling: min[%d]=%v > max[%d]=%v", i, min[i], i, max[i])
		}
	}
	return Space{Min: min, Max: max}, nil
}

// HeatSpace is the paper's design space: 5 temperature parameters
// (T_IC, T_x1, T_y1, T_x2, T_y2) uniform in [100, 500] K (§4.1).
func HeatSpace() Space {
	min := make([]float64, 5)
	max := make([]float64, 5)
	for i := range min {
		min[i], max[i] = 100, 500
	}
	return Space{Min: min, Max: max}
}

// GrayScottSpace is the design space of the Gray–Scott reaction–diffusion
// scenario: feed rate F, kill rate k, and the two diffusion coefficients,
// bounded to the patterned regime of the (F, k) plane and to explicitly
// stable diffusion at Δt = 1.
func GrayScottSpace() Space {
	return Space{
		Min: []float64{0.010, 0.045, 0.08, 0.04},
		Max: []float64{0.070, 0.065, 0.20, 0.10},
	}
}

// Dim returns the space dimensionality.
func (s Space) Dim() int { return len(s.Min) }

// Scale maps a unit-cube point to the physical box.
func (s Space) Scale(u []float64) []float64 {
	if len(u) != s.Dim() {
		panic(fmt.Sprintf("sampling: point dim %d != space dim %d", len(u), s.Dim()))
	}
	out := make([]float64, len(u))
	for i, v := range u {
		out[i] = s.Min[i] + v*(s.Max[i]-s.Min[i])
	}
	return out
}

// Normalize maps a physical point back to the unit cube, used to feed
// surrogate inputs in a trainable range.
func (s Space) Normalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		span := s.Max[i] - s.Min[i]
		if span == 0 {
			out[i] = 0
			continue
		}
		out[i] = (v - s.Min[i]) / span
	}
	return out
}

// Kind names an experimental design method.
type Kind string

// Supported designs (§3.1: "Methods currently supported to draw the
// parameters X for each client include the traditional Monte Carlo method,
// Latin hypercube and Halton sequence").
const (
	MonteCarloKind     Kind = "monte-carlo"
	LatinHypercubeKind Kind = "latin-hypercube"
	HaltonKind         Kind = "halton"
)

// New constructs a sampler by kind. blockSize is the stratification block
// for Latin hypercube designs (ignored otherwise; defaults to 64).
func New(kind Kind, dim int, seed uint64, blockSize int) (Sampler, error) {
	switch kind {
	case MonteCarloKind:
		return NewMonteCarlo(dim, seed), nil
	case LatinHypercubeKind:
		if blockSize <= 0 {
			blockSize = 64
		}
		return NewLatinHypercube(dim, blockSize, seed), nil
	case HaltonKind:
		return NewHalton(dim), nil
	default:
		return nil, fmt.Errorf("sampling: unknown design %q", kind)
	}
}

// MonteCarlo draws i.i.d. uniform points from a seeded stream.
type MonteCarlo struct {
	dim int
	rng *rand.Rand
}

// NewMonteCarlo builds a Monte Carlo sampler.
func NewMonteCarlo(dim int, seed uint64) *MonteCarlo {
	return &MonteCarlo{dim: dim, rng: rand.New(rand.NewPCG(seed, seed^0xb5297a4d3f2c1e07))}
}

// Next implements Sampler.
func (m *MonteCarlo) Next() []float64 {
	p := make([]float64, m.dim)
	for i := range p {
		p[i] = m.rng.Float64()
	}
	return p
}

// Dim implements Sampler.
func (m *MonteCarlo) Dim() int { return m.dim }
