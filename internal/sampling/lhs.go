package sampling

import "math/rand/v2"

// LatinHypercube generates stratified designs: within each block of n
// consecutive points, every dimension's n strata [k/n, (k+1)/n) each
// contain exactly one point, with the strata pairing shuffled independently
// per dimension. When a block is exhausted a fresh one is generated, so the
// sampler serves unbounded streams (the online setting keeps requesting new
// parameters for as long as the training runs).
type LatinHypercube struct {
	dim   int
	n     int
	rng   *rand.Rand
	block [][]float64
	used  int
}

// NewLatinHypercube builds an LHS sampler with blocks of n points.
func NewLatinHypercube(dim, n int, seed uint64) *LatinHypercube {
	if n < 1 {
		n = 1
	}
	return &LatinHypercube{dim: dim, n: n, rng: rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))}
}

// BlockSize returns the stratification block length.
func (l *LatinHypercube) BlockSize() int { return l.n }

// Next implements Sampler.
func (l *LatinHypercube) Next() []float64 {
	if l.block == nil || l.used >= l.n {
		l.generateBlock()
	}
	p := l.block[l.used]
	l.used++
	return p
}

// Dim implements Sampler.
func (l *LatinHypercube) Dim() int { return l.dim }

func (l *LatinHypercube) generateBlock() {
	l.block = make([][]float64, l.n)
	for i := range l.block {
		l.block[i] = make([]float64, l.dim)
	}
	perm := make([]int, l.n)
	for d := 0; d < l.dim; d++ {
		for i := range perm {
			perm[i] = i
		}
		l.rng.Shuffle(l.n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < l.n; i++ {
			// One uniform draw within the assigned stratum.
			l.block[i][d] = (float64(perm[i]) + l.rng.Float64()) / float64(l.n)
		}
	}
	l.used = 0
}
