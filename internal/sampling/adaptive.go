package sampling

import "math/rand/v2"

// Adaptive implements the paper's future-work direction (§5): "adaptive
// training where the next set of clients to run is defined online according
// to the current training status". It wraps a base design with an
// acquisition rule: each draw proposes several candidate points and keeps
// the one scoring highest under a caller-supplied criterion — typically the
// surrogate's current validation error near the point — while an ε fraction
// of draws remain pure exploration to keep the design space covered.
type Adaptive struct {
	base       Sampler
	score      func(p []float64) float64
	candidates int
	epsilon    float64
	rng        *rand.Rand
}

// NewAdaptive builds an adaptive sampler. candidates is the number of
// proposals scored per draw (≥1); epsilon in [0,1] is the exploration
// fraction; score maps a unit-cube point to a priority (higher = more
// useful to simulate next).
func NewAdaptive(base Sampler, candidates int, epsilon float64, seed uint64, score func(p []float64) float64) *Adaptive {
	if candidates < 1 {
		candidates = 1
	}
	if epsilon < 0 {
		epsilon = 0
	}
	if epsilon > 1 {
		epsilon = 1
	}
	return &Adaptive{
		base:       base,
		score:      score,
		candidates: candidates,
		epsilon:    epsilon,
		rng:        rand.New(rand.NewPCG(seed, seed^0x3c6ef372fe94f82b)),
	}
}

// Next implements Sampler.
func (a *Adaptive) Next() []float64 {
	if a.score == nil || a.candidates == 1 || a.rng.Float64() < a.epsilon {
		return a.base.Next()
	}
	best := a.base.Next()
	bestScore := a.score(best)
	for i := 1; i < a.candidates; i++ {
		p := a.base.Next()
		if s := a.score(p); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// Dim implements Sampler.
func (a *Adaptive) Dim() int { return a.base.Dim() }
