package sampling

// Halton generates the deterministic low-discrepancy Halton sequence, using
// the first d primes as bases. The sequence covers the design space far
// more evenly than i.i.d. sampling for the moderate dimensionalities of
// simulation parameter studies (d=5 in the paper's heat-equation setup).
type Halton struct {
	dim   int
	bases []int
	index int
}

// NewHalton builds a Halton sampler of the given dimension. The index
// starts at 1 (the 0th Halton point is the origin, which is degenerate).
func NewHalton(dim int) *Halton {
	return &Halton{dim: dim, bases: firstPrimes(dim), index: 1}
}

// Skip advances the sequence by n points, a common de-correlation practice
// when several ensembles share the sequence.
func (h *Halton) Skip(n int) { h.index += n }

// Next implements Sampler.
func (h *Halton) Next() []float64 {
	p := make([]float64, h.dim)
	for i, base := range h.bases {
		p[i] = radicalInverse(h.index, base)
	}
	h.index++
	return p
}

// Dim implements Sampler.
func (h *Halton) Dim() int { return h.dim }

// radicalInverse reflects the base-b digits of n about the radix point:
// the van der Corput sequence underlying Halton.
func radicalInverse(n, base int) float64 {
	inv := 1.0 / float64(base)
	var result float64
	f := inv
	for n > 0 {
		result += float64(n%base) * f
		n /= base
		f *= inv
	}
	return result
}

// firstPrimes returns the first n primes by trial division; n is tiny
// (the design dimensionality).
func firstPrimes(n int) []int {
	primes := make([]int, 0, n)
	for candidate := 2; len(primes) < n; candidate++ {
		isPrime := true
		for _, p := range primes {
			if p*p > candidate {
				break
			}
			if candidate%p == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			primes = append(primes, candidate)
		}
	}
	return primes
}
