package melissa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"melissa/internal/nn"
	"melissa/internal/tensor"
)

// Surrogate is a trained direct deep surrogate of a simulation problem:
// given the design parameters and a physical time, it predicts the full
// flattened field in one forward pass (§2.1 "direct models":
// f_θ(X, t) ≈ u_t^X).
//
// All prediction methods are safe for concurrent use and scale across
// cores: each goroutine draws a private forward workspace (network replica
// plus staging buffers) from an internal pool, so parallel queries never
// serialize on a lock. Workspaces are recycled, keeping the steady-state
// single-query path allocation-free.
type Surrogate struct {
	net  *nn.Network
	norm Normalizer
	meta Meta

	// workspaces pools *predictScratch. The surrogate's weights are
	// immutable after construction, so pooled replicas never go stale.
	workspaces sync.Pool
}

// predictScratch is one goroutine's private forward workspace: a network
// replica (the nn layers cache activations per batch shape and record
// forward state, so a shared network would race) and the reusable input
// row, raw staging and denormalization buffers.
type predictScratch struct {
	net    *nn.Network
	rawIn  []float32
	in     *tensor.Matrix
	outBuf []float32
}

// Meta describes a surrogate's provenance: the problem it models and the
// architecture hyperparameters needed to rebuild the network. Save embeds
// it in checkpoints so LoadSurrogate needs no further arguments.
type Meta struct {
	Problem     string
	GridN       int
	StepsPerSim int
	Dt          float64
	Hidden      []int
	Seed        uint64
}

func surrogateMeta(cfg Config, prob Problem) Meta {
	return Meta{
		Problem:     prob.Name(),
		GridN:       cfg.GridN,
		StepsPerSim: cfg.StepsPerSim,
		Dt:          cfg.Dt,
		Hidden:      append([]int(nil), cfg.Hidden...),
		Seed:        cfg.Seed,
	}
}

func newSurrogate(net *nn.Network, norm Normalizer, meta Meta) *Surrogate {
	s := &Surrogate{net: net, norm: norm, meta: meta}
	s.workspaces.New = func() any {
		// Clone shares nothing with the original, so concurrent forward
		// passes are independent; weights are copied once at clone time
		// and the surrogate never mutates them afterwards.
		return s.newScratch(s.net.Clone())
	}
	// Seed the pool with a workspace wrapping the original network, so the
	// common single-goroutine caller never pays for a clone.
	s.workspaces.Put(s.newScratch(net))
	return s
}

func (s *Surrogate) newScratch(net *nn.Network) *predictScratch {
	return &predictScratch{
		net:    net,
		rawIn:  make([]float32, s.norm.InputDim()),
		in:     tensor.New(1, s.norm.InputDim()),
		outBuf: make([]float32, s.norm.OutputDim()),
	}
}

// SurrogateFromNetwork wraps a trained network in a servable Surrogate. The
// weights are snapshotted (deep copy), so the caller may keep training the
// network afterwards — this is the training→serving bridge: call it at a
// synchronized step boundary (e.g. the trainer's OnBatchEnd hook), then
// PublishSurrogate the result for a watching melissa-serve to hot-load.
// cfg must carry the Problem and the architecture fields the network was
// built with (GridN, StepsPerSim, Dt, Hidden, Seed).
func SurrogateFromNetwork(net *nn.Network, cfg Config) (*Surrogate, error) {
	if cfg.Problem == nil {
		return nil, fmt.Errorf("melissa: SurrogateFromNetwork needs cfg.Problem")
	}
	norm := cfg.Problem.Normalizer(cfg)
	if got := net.NumParams(); got == 0 {
		return nil, fmt.Errorf("melissa: SurrogateFromNetwork got an empty network")
	}
	return newSurrogate(net.Clone(), norm, surrogateMeta(cfg, cfg.Problem)), nil
}

// Meta returns the surrogate's provenance record.
func (s *Surrogate) Meta() Meta { return s.meta }

// GridN returns the predicted field's side length.
func (s *Surrogate) GridN() int { return s.meta.GridN }

// ParamDim returns the number of design parameters Predict expects.
func (s *Surrogate) ParamDim() int { return s.norm.InputDim() - 1 }

// OutputDim returns the flattened field length Predict returns.
func (s *Surrogate) OutputDim() int { return s.norm.OutputDim() }

// NumParams returns the number of learnable parameters.
func (s *Surrogate) NumParams() int { return s.net.NumParams() }

// Predict returns the physical field (flattened, problem geometry) at
// physical time t for the given design parameters (in the problem's
// canonical order). It panics if len(params) differs from ParamDim.
func (s *Surrogate) Predict(params []float64, t float64) []float64 {
	return s.PredictInto(nil, params, t)
}

// PredictHeat is the typed heat-equation convenience over Predict.
func (s *Surrogate) PredictHeat(p HeatParams, t float64) []float64 {
	return s.Predict(p.Vector(), t)
}

// PredictInto is Predict with a caller-supplied destination: dst is grown
// as needed and returned. With a destination of sufficient capacity the
// steady-state call performs no heap allocations — the hot path for dense
// parameter sweeps. Safe for concurrent use: each call runs on a private
// pooled workspace, so parallel callers proceed without serializing.
func (s *Surrogate) PredictInto(dst []float64, params []float64, t float64) []float64 {
	if len(params) != s.ParamDim() {
		panic(fmt.Sprintf("melissa: Predict got %d parameters, problem %q wants %d", len(params), s.meta.Problem, s.ParamDim()))
	}
	ws := s.workspaces.Get().(*predictScratch)
	defer s.workspaces.Put(ws)
	for i, v := range params {
		ws.rawIn[i] = float32(v)
	}
	ws.rawIn[len(params)] = float32(t)
	s.norm.NormalizeInput(ws.rawIn, ws.in.Data)
	pred := ws.net.Forward(ws.in)
	copy(ws.outBuf, pred.Data)
	s.norm.DenormalizeField(ws.outBuf)
	width := s.norm.OutputDim()
	if cap(dst) < width {
		dst = make([]float64, width)
	}
	dst = dst[:width]
	for i, v := range ws.outBuf {
		dst[i] = float64(v)
	}
	return dst
}

// PredictBatch evaluates many (params, time) queries in one forward pass,
// amortizing the matrix multiplies — this is where the surrogate's
// orders-of-magnitude speedup over the solver comes from. Safe for
// concurrent use: the forward pass runs on a private pooled workspace.
func (s *Surrogate) PredictBatch(params [][]float64, ts []float64) ([][]float64, error) {
	if len(params) != len(ts) {
		return nil, fmt.Errorf("melissa: %d params for %d times", len(params), len(ts))
	}
	dim := s.ParamDim()
	in := tensor.New(len(params), s.norm.InputDim())
	raw := make([]float32, s.norm.InputDim())
	for r, p := range params {
		if len(p) != dim {
			return nil, fmt.Errorf("melissa: query %d has %d parameters, problem %q wants %d", r, len(p), s.meta.Problem, dim)
		}
		for i, v := range p {
			raw[i] = float32(v)
		}
		raw[dim] = float32(ts[r])
		s.norm.NormalizeInput(raw, in.Row(r))
	}
	ws := s.workspaces.Get().(*predictScratch)
	defer s.workspaces.Put(ws)
	pred := ws.net.Forward(in)
	out := make([][]float64, len(params))
	width := s.norm.OutputDim()
	row := make([]float32, width)
	for r := range out {
		copy(row, pred.Data[r*width:(r+1)*width])
		s.norm.DenormalizeField(row)
		field := make([]float64, width)
		for i, v := range row {
			field[i] = float64(v)
		}
		out[r] = field
	}
	return out, nil
}

// PredictBatchHeat is the typed heat-equation convenience over
// PredictBatch.
func (s *Surrogate) PredictBatchHeat(ps []HeatParams, ts []float64) ([][]float64, error) {
	vecs := make([][]float64, len(ps))
	for i, p := range ps {
		vecs[i] = p.Vector()
	}
	return s.PredictBatch(vecs, ts)
}

// Checkpoint metadata block: it precedes the nn weight payload so saved
// surrogates are self-describing —
//
//	magic "MLSG" | version u32 | problem string | gridN u32 | steps u32 |
//	dt f64 | hiddenCount u32 | hidden u32... | seed u64 | nn weights
//
// Weight payloads without the block (the server's raw checkpoints, files
// from before the metadata header) still load through the legacy loaders,
// which take the architecture explicitly.
const (
	surrogateMagic   = "MLSG"
	surrogateVersion = 1
)

// Save writes the surrogate to w: the metadata block followed by the
// network weights, so LoadSurrogate can reconstruct it without any
// architecture arguments.
func (s *Surrogate) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(surrogateMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(surrogateVersion)); err != nil {
		return err
	}
	if err := writeString(bw, s.meta.Problem); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(s.meta.GridN), uint32(s.meta.StepsPerSim)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(s.meta.Dt)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.meta.Hidden))); err != nil {
		return err
	}
	for _, h := range s.meta.Hidden {
		if err := binary.Write(bw, binary.LittleEndian, uint32(h)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.meta.Seed); err != nil {
		return err
	}
	if err := s.net.SaveWeights(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes the surrogate (metadata + weights) to path.
func (s *Surrogate) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSurrogate reconstructs a surrogate from a checkpoint written by Save.
// The embedded metadata names the problem (resolved through the registry)
// and the architecture, so no further arguments are needed. For raw weight
// payloads without metadata, use LoadSurrogateLegacy.
func LoadSurrogate(r io.Reader) (*Surrogate, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("melissa: reading checkpoint magic: %w", err)
	}
	if string(magic) != surrogateMagic {
		return nil, fmt.Errorf("melissa: checkpoint has no metadata block (magic %q) — re-read the payload with LoadSurrogateLegacy and an explicit architecture (this reader has already been partially consumed)", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != surrogateVersion {
		return nil, fmt.Errorf("melissa: unsupported surrogate checkpoint version %d", version)
	}
	probName, err := readString(br)
	if err != nil {
		return nil, err
	}
	var gridN, steps uint32
	if err := binary.Read(br, binary.LittleEndian, &gridN); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &steps); err != nil {
		return nil, err
	}
	if gridN < 1 || gridN > 1<<16 {
		return nil, fmt.Errorf("melissa: unreasonable checkpoint grid size %d", gridN)
	}
	if steps < 1 || steps > 1<<30 {
		return nil, fmt.Errorf("melissa: unreasonable checkpoint step count %d", steps)
	}
	var dtBits uint64
	if err := binary.Read(br, binary.LittleEndian, &dtBits); err != nil {
		return nil, err
	}
	var hiddenCount uint32
	if err := binary.Read(br, binary.LittleEndian, &hiddenCount); err != nil {
		return nil, err
	}
	if hiddenCount > 1<<10 {
		return nil, fmt.Errorf("melissa: unreasonable hidden layer count %d", hiddenCount)
	}
	hidden := make([]int, hiddenCount)
	for i := range hidden {
		var h uint32
		if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
			return nil, err
		}
		if h < 1 || h > 1<<20 {
			return nil, fmt.Errorf("melissa: unreasonable checkpoint hidden width %d", h)
		}
		hidden[i] = int(h)
	}
	var seed uint64
	if err := binary.Read(br, binary.LittleEndian, &seed); err != nil {
		return nil, err
	}

	prob, err := ProblemByName(probName)
	if err != nil {
		return nil, fmt.Errorf("melissa: checkpoint problem: %w", err)
	}
	meta := Meta{
		Problem:     probName,
		GridN:       int(gridN),
		StepsPerSim: int(steps),
		Dt:          math.Float64frombits(dtBits),
		Hidden:      hidden,
		Seed:        seed,
	}
	cfg := Config{
		Problem:     prob,
		GridN:       meta.GridN,
		StepsPerSim: meta.StepsPerSim,
		Dt:          meta.Dt,
		Hidden:      hidden,
		Seed:        seed,
	}
	norm := prob.Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), hidden, norm.OutputDim(), seed)
	if err := net.LoadWeights(br); err != nil {
		return nil, err
	}
	return newSurrogate(net, norm, meta), nil
}

// LoadSurrogateFile reads a self-describing surrogate checkpoint from path.
func LoadSurrogateFile(path string) (*Surrogate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSurrogate(f)
}

// LoadSurrogateLegacy reconstructs a heat-equation surrogate from a raw
// weight payload without a metadata block (a server checkpoint, or a file
// saved before metadata existed). The architecture parameters must match
// those used in training.
func LoadSurrogateLegacy(r io.Reader, gridN, stepsPerSim int, dt float64, hidden []int, seed uint64) (*Surrogate, error) {
	prob := Heat()
	cfg := Config{Problem: prob, GridN: gridN, StepsPerSim: stepsPerSim, Dt: dt, Hidden: hidden, Seed: seed}
	norm := prob.Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), hidden, norm.OutputDim(), seed)
	if err := net.LoadWeights(r); err != nil {
		return nil, err
	}
	meta := Meta{Problem: prob.Name(), GridN: gridN, StepsPerSim: stepsPerSim, Dt: dt, Hidden: append([]int(nil), hidden...), Seed: seed}
	return newSurrogate(net, norm, meta), nil
}

// LoadSurrogateLegacyFile reads a raw heat-equation weights file.
func LoadSurrogateLegacyFile(path string, gridN, stepsPerSim int, dt float64, hidden []int, seed uint64) (*Surrogate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSurrogateLegacy(f, gridN, stepsPerSim, dt, hidden, seed)
}

// writeString / readString mirror the nn checkpoint string encoding.
func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("melissa: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
