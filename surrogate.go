package melissa

import (
	"fmt"
	"io"
	"os"

	"melissa/internal/core"
	"melissa/internal/nn"
	"melissa/internal/tensor"
)

// Surrogate is a trained direct deep surrogate of the heat equation: given
// the simulation parameters and a physical time, it predicts the full
// temperature field in one forward pass (§2.1 "direct models":
// f_θ(X, t) ≈ u_t^X).
type Surrogate struct {
	net   *nn.Network
	norm  core.HeatNormalizer
	gridN int
}

// GridN returns the predicted field's side length.
func (s *Surrogate) GridN() int { return s.gridN }

// NumParams returns the number of learnable parameters.
func (s *Surrogate) NumParams() int { return s.net.NumParams() }

// Predict returns the temperature field (Kelvin, row-major gridN×gridN) at
// physical time t seconds for the given parameters.
func (s *Surrogate) Predict(p HeatParams, t float64) []float64 {
	in := tensor.New(1, s.norm.InputDim())
	space := s.norm.Space
	raw := []float64{p.TIC, p.TX1, p.TY1, p.TX2, p.TY2}
	for i, v := range raw {
		in.Set(0, i, float32((v-space.Min[i])/(space.Max[i]-space.Min[i])))
	}
	if s.norm.TimeMax > 0 {
		in.Set(0, len(raw), float32(t/s.norm.TimeMax))
	}
	pred := s.net.Forward(in)
	out := make([]float32, len(pred.Data))
	copy(out, pred.Data)
	s.norm.DenormalizeField(out)
	field := make([]float64, len(out))
	for i, v := range out {
		field[i] = float64(v)
	}
	return field
}

// PredictBatch evaluates many (params, time) queries in one forward pass,
// amortizing the matrix multiplies — this is where the surrogate's
// orders-of-magnitude speedup over the solver comes from.
func (s *Surrogate) PredictBatch(ps []HeatParams, ts []float64) ([][]float64, error) {
	if len(ps) != len(ts) {
		return nil, fmt.Errorf("melissa: %d params for %d times", len(ps), len(ts))
	}
	in := tensor.New(len(ps), s.norm.InputDim())
	space := s.norm.Space
	for r, p := range ps {
		raw := []float64{p.TIC, p.TX1, p.TY1, p.TX2, p.TY2}
		for i, v := range raw {
			in.Set(r, i, float32((v-space.Min[i])/(space.Max[i]-space.Min[i])))
		}
		if s.norm.TimeMax > 0 {
			in.Set(r, len(raw), float32(ts[r]/s.norm.TimeMax))
		}
	}
	pred := s.net.Forward(in)
	out := make([][]float64, len(ps))
	width := s.norm.OutputDim()
	for r := range out {
		row := make([]float32, width)
		copy(row, pred.Data[r*width:(r+1)*width])
		s.norm.DenormalizeField(row)
		field := make([]float64, width)
		for i, v := range row {
			field[i] = float64(v)
		}
		out[r] = field
	}
	return out, nil
}

// Save writes the surrogate weights to w (the nn checkpoint format).
func (s *Surrogate) Save(w io.Writer) error { return s.net.SaveWeights(w) }

// SaveFile writes the surrogate weights to path.
func (s *Surrogate) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.net.SaveWeights(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSurrogate reconstructs a surrogate from saved weights. The
// architecture parameters must match those used in training.
func LoadSurrogate(r io.Reader, gridN, stepsPerSim int, dt float64, hidden []int, seed uint64) (*Surrogate, error) {
	norm := core.NewHeatNormalizer(gridN*gridN, float64(stepsPerSim)*dt)
	net := nn.ArchitectureMLP(norm.InputDim(), hidden, norm.OutputDim(), seed)
	if err := net.LoadWeights(r); err != nil {
		return nil, err
	}
	return &Surrogate{net: net, norm: norm, gridN: gridN}, nil
}

// LoadSurrogateFile reads a surrogate from a weights file.
func LoadSurrogateFile(path string, gridN, stepsPerSim int, dt float64, hidden []int, seed uint64) (*Surrogate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSurrogate(f, gridN, stepsPerSim, dt, hidden, seed)
}
