package melissa_test

// One benchmark per table and figure of the paper's evaluation (§4), plus
// the ablations DESIGN.md calls out. Each benchmark executes the experiment
// and prints the corresponding rows/series on its first iteration, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Timing experiments replay the paper's
// cluster runs on the discrete-event simulator at full scale; quality
// experiments run real training at the MELISSA_SCALE preset
// (tiny|default|large, default "default").
//
// This file lives in the external test package: internal/experiments
// imports melissa (for the Problem API), so importing it from an
// in-package test would cycle.

import (
	"context"
	"os"
	"testing"

	"melissa"
	"melissa/internal/buffer"
	"melissa/internal/experiments"
)

func benchScale(b *testing.B) experiments.Scale {
	b.Helper()
	s, err := experiments.ScaleByName(os.Getenv("MELISSA_SCALE"))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFigure2Throughput regenerates Figure 2: throughput and buffer
// population over time for FIFO/FIRO/Reservoir at paper scale.
func BenchmarkFigure2Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(res.MeanThroughput(buffer.ReservoirKind), "reservoir-samples/s")
		b.ReportMetric(res.MeanThroughput(buffer.FIFOKind), "fifo-samples/s")
	}
}

// BenchmarkFigure3Occurrences regenerates Figure 3: the sample-repetition
// histograms of the Reservoir for 1/2/4 GPUs.
func BenchmarkFigure3Occurrences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(res.MeanOcc[4], "mean-occ-4gpu")
	}
}

// BenchmarkFigure4Quality regenerates Figure 4: training/validation loss
// for each buffer against the one-epoch offline reference (real training).
func BenchmarkFigure4Quality(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(res.Run("Reservoir").FinalVal, "reservoir-valMSE")
		b.ReportMetric(res.Run("FIFO").FinalVal, "fifo-valMSE")
	}
}

// BenchmarkFigure5MultiGPU regenerates Figure 5: validation loss across
// buffers × {1,2,4} GPUs (real training).
func BenchmarkFigure5MultiGPU(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(res.Run(buffer.ReservoirKind, 4).FinalVal, "reservoir4-valMSE")
	}
}

// BenchmarkFigure6OnlineVsOffline regenerates Figure 6: online Reservoir on
// the large ensemble vs offline multi-epoch training from disk.
func BenchmarkFigure6OnlineVsOffline(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(100*res.Improvement, "improvement-%")
	}
}

// BenchmarkTable1 regenerates Table 1: generation/total hours, min MSE and
// mean throughput for Offline/FIFO/FIRO/Reservoir × {1,2,4} GPUs.
func BenchmarkTable1(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(scale, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(res.Row("Reservoir", 4).ThroughputSmps, "reservoir4-samples/s")
	}
}

// BenchmarkTable2 regenerates Table 2: the 8 TB online run vs the 100-epoch
// offline baseline at 4 GPUs.
func BenchmarkTable2(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(scale, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(res.ThroughputRatio, "online/offline-ratio")
		b.ReportMetric(res.OnlineTotalH, "online-hours")
	}
}

// BenchmarkAppendixAResidency regenerates Appendix A: measured Reservoir
// residency vs the closed form n−1.
func BenchmarkAppendixAResidency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AppendixA([]int{16, 64, 256}, 40000)
		if i == 0 {
			res.Render(os.Stdout)
		}
		b.ReportMetric(res.Rows[1].RelError, "relerr-n64")
	}
}

// BenchmarkAblationCapacity sweeps the Reservoir capacity at paper scale.
func BenchmarkAblationCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationCapacity(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.RenderAblations(os.Stdout, rows, nil, nil)
		}
	}
}

// BenchmarkAblationThreshold sweeps the Reservoir threshold at paper scale.
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationThreshold(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.RenderAblations(os.Stdout, nil, rows, nil)
		}
	}
}

// BenchmarkAblationAllReduce evaluates the multi-GPU scaling model.
func BenchmarkAblationAllReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationAllReduce()
		if i == 0 {
			experiments.RenderAblations(os.Stdout, nil, nil, rows)
		}
	}
}

// BenchmarkAblationEviction contrasts the Reservoir's seen-only eviction
// with a uniform-eviction ablation under overproduction.
func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationEviction()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.RenderEvictionAblation(os.Stdout, rows)
		}
		b.ReportMetric(rows[1].Coverage, "uniform-coverage")
	}
}

// BenchmarkAblationOfflineDataSize sweeps the Figure 6 crossover: offline
// dataset size vs online improvement at fixed budget (real training).
func BenchmarkAblationOfflineDataSize(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationOfflineData(scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.RenderOfflineDataAblation(os.Stdout, rows)
		}
	}
}

// BenchmarkCostAnalysis regenerates the §5 cost accounting (online 63.8€
// vs offline 49.1€ at Jean-Zay tariffs) plus the §3.1 reservation-order
// comparison.
func BenchmarkCostAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CostAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.ReservationOrder(1.5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(os.Stdout)
			experiments.RenderReservation(os.Stdout, rows)
		}
		b.ReportMetric(res.Rows[0].TotalEuro, "online-euro")
	}
}

// BenchmarkLiveOnlineTraining measures the real end-to-end live framework
// (TCP transport, launcher, solver clients, training server) at laptop
// scale — the system the examples exercise, as opposed to the simulated
// cluster above.
func BenchmarkLiveOnlineTraining(b *testing.B) {
	cfg := melissa.DefaultConfig()
	cfg.Simulations = 8
	cfg.GridN = 12
	cfg.StepsPerSim = 10
	cfg.ValidationSims = 0
	cfg.Hidden = []int{32}
	for i := 0; i < b.N; i++ {
		res, err := melissa.RunOnline(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput, "samples/s")
	}
}
