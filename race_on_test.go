//go:build race

package melissa

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool intentionally drops entries at random and allocation
// gates become meaningless.
const raceEnabled = true
