package melissa

import (
	"fmt"
	"sort"
	"sync"

	"melissa/internal/core"
	"melissa/internal/sampling"
	"melissa/internal/solver"
)

// Simulator is one running ensemble member: a stepwise time integrator
// over a flattened field. Problems return Simulators from NewSimulator;
// the framework drives them step by step so clients can stream every
// computed field and resume from checkpoints.
type Simulator interface {
	// StepOnce advances the field by one time step.
	StepOnce() error
	// StepIndex returns the number of completed time steps.
	StepIndex() int
	// Field returns the current flattened field. The slice may alias
	// internal state; callers must copy before the next step if they
	// retain it.
	Field() []float64
	// Restore resets the simulator to a checkpointed state: the field
	// after the given completed step.
	Restore(step int, field []float64) error
}

// Normalizer maps a problem's raw streamed samples (physical units) into
// network input and target rows, and predictions back. Keeping
// normalization on the training side leaves the wire data faithful to the
// solver output.
type Normalizer interface {
	// InputDim is the network input width: the design parameters plus the
	// time input.
	InputDim() int
	// OutputDim is the flattened field length the network predicts.
	OutputDim() int
	// NormalizeInput writes the normalized network input for one raw input
	// vector (the physical parameters followed by the physical time).
	NormalizeInput(raw, dst []float32)
	// NormalizeOutput writes the normalized training target for one raw
	// field.
	NormalizeOutput(raw, dst []float32)
	// DenormalizeField maps a normalized prediction back to physical
	// units in place.
	DenormalizeField(field []float32)
	// RawMSE converts a normalized-unit MSE into physical units².
	RawMSE(normalizedMSE float64) float64
}

// Problem describes one simulation scenario the framework can train a
// surrogate for: its parameter space, its solver, its normalization, and
// its output geometry. RunOnline, GenerateDataset, TrainOffline, the
// launcher, and the validation generator operate exclusively through this
// interface; the heat equation (the paper's demonstrator) and Gray–Scott
// reaction–diffusion are the two registered implementations.
type Problem interface {
	// Name identifies the problem; it is recorded in surrogate checkpoints
	// so LoadSurrogate can reconstruct the model from the registry.
	Name() string
	// ParamNames returns the design-parameter names; their count is the
	// design dimensionality.
	ParamNames() []string
	// ParamBounds returns the design space box: per-parameter physical
	// minima and maxima, each of length len(ParamNames()).
	ParamBounds() (min, max []float64)
	// FieldShape returns the logical shape of the flattened output field
	// for a configuration — e.g. [N N] for the heat equation, [2 N N] for
	// Gray–Scott's two channels. The flattened length is its product.
	FieldShape(cfg Config) []int
	// NewSimulator builds one ensemble member for the given physical
	// parameters (in ParamNames order).
	NewSimulator(cfg Config, params []float64) (Simulator, error)
	// Normalizer builds the sample normalizer for a configuration.
	Normalizer(cfg Config) Normalizer
}

var (
	problemMu       sync.RWMutex
	problemRegistry = map[string]func() Problem{}
)

// RegisterProblem makes a problem constructor available by name, for
// Config.Problem lookups by CLI flags and for LoadSurrogate's
// metadata-driven reconstruction. It panics on duplicate names, like
// database/sql.Register.
func RegisterProblem(name string, factory func() Problem) {
	problemMu.Lock()
	defer problemMu.Unlock()
	if name == "" || factory == nil {
		panic("melissa: RegisterProblem with empty name or nil factory")
	}
	if _, dup := problemRegistry[name]; dup {
		panic(fmt.Sprintf("melissa: problem %q registered twice", name))
	}
	problemRegistry[name] = factory
}

// ProblemByName returns the registered problem with that name.
func ProblemByName(name string) (Problem, error) {
	problemMu.RLock()
	factory, ok := problemRegistry[name]
	problemMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("melissa: unknown problem %q (registered: %v)", name, Problems())
	}
	return factory(), nil
}

// Problems lists the registered problem names, sorted.
func Problems() []string {
	problemMu.RLock()
	defer problemMu.RUnlock()
	names := make([]string, 0, len(problemRegistry))
	for name := range problemRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterProblem(HeatName, Heat)
	RegisterProblem(GrayScottName, GrayScott)
}

// Registered problem names.
const (
	HeatName      = "heat"
	GrayScottName = "gray-scott"
)

// Heat returns the paper's demonstrator problem: the 2D heat equation with
// the initial temperature and four boundary temperatures sampled in
// [100, 500] K (§4.1), solved implicitly and predicted as an N×N field.
func Heat() Problem { return heatProblem{} }

type heatProblem struct{}

func (heatProblem) Name() string { return HeatName }

func (heatProblem) ParamNames() []string {
	return []string{"T_IC", "T_x1", "T_y1", "T_x2", "T_y2"}
}

func (heatProblem) ParamBounds() (min, max []float64) {
	s := sampling.HeatSpace()
	return s.Min, s.Max
}

func (heatProblem) FieldShape(cfg Config) []int { return []int{cfg.GridN, cfg.GridN} }

func (heatProblem) NewSimulator(cfg Config, params []float64) (Simulator, error) {
	p, err := solver.ParamsFromVector(params)
	if err != nil {
		return nil, err
	}
	return solver.New(solver.Config{N: cfg.GridN, Steps: cfg.StepsPerSim, Dt: cfg.Dt, Workers: cfg.Workers}, p)
}

func (p heatProblem) Normalizer(cfg Config) Normalizer {
	return core.NewHeatNormalizer(fieldDim(p, cfg), float64(cfg.StepsPerSim)*cfg.Dt)
}

// GrayScott returns the second registered problem: 2D Gray–Scott
// reaction–diffusion on a periodic lattice, an explicit two-species scheme
// whose pattern-forming dynamics are qualitatively different from pure
// diffusion. The surrogate predicts both concentration channels at once
// (output length 2·N²); the feed/kill rates and diffusion coefficients are
// the design parameters.
func GrayScott() Problem { return grayScottProblem{} }

type grayScottProblem struct{}

func (grayScottProblem) Name() string { return GrayScottName }

func (grayScottProblem) ParamNames() []string { return []string{"F", "k", "Du", "Dv"} }

func (grayScottProblem) ParamBounds() (min, max []float64) {
	s := sampling.GrayScottSpace()
	return s.Min, s.Max
}

func (grayScottProblem) FieldShape(cfg Config) []int { return []int{2, cfg.GridN, cfg.GridN} }

func (grayScottProblem) NewSimulator(cfg Config, params []float64) (Simulator, error) {
	p, err := solver.GrayScottParamsFromVector(params)
	if err != nil {
		return nil, err
	}
	return solver.NewGrayScott(solver.GrayScottConfig{N: cfg.GridN, Steps: cfg.StepsPerSim, Dt: cfg.Dt}, p)
}

func (p grayScottProblem) Normalizer(cfg Config) Normalizer {
	// Concentrations live in [0,1] by construction of the scheme.
	return core.NewFieldNormalizer(sampling.GrayScottSpace(), float64(cfg.StepsPerSim)*cfg.Dt, 0, 1, fieldDim(p, cfg))
}

// DefaultDt implements DtProvider: the Gray–Scott explicit scheme
// integrates in lattice time units with a stable step of 1 (the solver's
// own default), three orders of magnitude coarser than the heat
// equation's 0.01 s.
func (grayScottProblem) DefaultDt() float64 { return 1 }

// DtProvider is optionally implemented by problems whose natural solver
// time step differs from the framework-wide 0.01 default. CLI entry
// points resolve their -dt default through DefaultDtFor so that selecting
// a problem never silently runs it at another problem's step size.
type DtProvider interface {
	// DefaultDt returns the problem's preferred solver time step.
	DefaultDt() float64
}

// DefaultDtFor returns prob's preferred solver time step: its DefaultDt
// when it provides one, else 0.01 (the heat equation's step, the
// framework default).
func DefaultDtFor(prob Problem) float64 {
	if dp, ok := prob.(DtProvider); ok {
		return dp.DefaultDt()
	}
	return 0.01
}

// fieldDim returns the flattened output length of a problem configuration.
func fieldDim(prob Problem, cfg Config) int {
	dim := 1
	for _, d := range prob.FieldShape(cfg) {
		dim *= d
	}
	return dim
}

// problemSpace builds the sampling box from a problem's bounds.
func problemSpace(prob Problem) (sampling.Space, error) {
	min, max := prob.ParamBounds()
	space, err := sampling.NewSpace(min, max)
	if err != nil {
		return sampling.Space{}, fmt.Errorf("melissa: problem %q bounds: %w", prob.Name(), err)
	}
	if space.Dim() != len(prob.ParamNames()) {
		return sampling.Space{}, fmt.Errorf("melissa: problem %q has %d bounds for %d parameters", prob.Name(), space.Dim(), len(prob.ParamNames()))
	}
	return space, nil
}

// coreNormalizer adapts a public Normalizer to the training-side sample
// interface. Built-in normalizers already implement both and pass through.
func coreNormalizer(n Normalizer) core.Normalizer {
	return core.AdaptNormalizer(n)
}

// streamSteps drives one simulation of prob and hands every computed step
// to emit in the streamed sample layout: the float32 input vector (the
// physical parameters followed by the physical time) and the float32 field
// copy. The validation generator and the offline dataset writer share it so
// the wire layout is defined in exactly one place. emit owns both slices.
func streamSteps(cfg Config, prob Problem, params []float64, emit func(step int, input, output []float32) error) error {
	sim, err := prob.NewSimulator(cfg, params)
	if err != nil {
		return err
	}
	for sim.StepIndex() < cfg.StepsPerSim {
		if err := sim.StepOnce(); err != nil {
			return err
		}
		step := sim.StepIndex()
		input := make([]float32, 0, len(params)+1)
		for _, v := range params {
			input = append(input, float32(v))
		}
		input = append(input, float32(float64(step)*cfg.Dt))
		field := sim.Field()
		output := make([]float32, len(field))
		for i, v := range field {
			output[i] = float32(v)
		}
		if err := emit(step, input, output); err != nil {
			return err
		}
	}
	return nil
}

// Simulate runs a problem's reference solver for one parameter vector,
// returning the flattened field after each step — the ground truth that
// examples compare surrogate predictions against.
func Simulate(prob Problem, cfg Config, params []float64) ([][]float64, error) {
	if prob == nil {
		prob = Heat()
	}
	sim, err := prob.NewSimulator(cfg, params)
	if err != nil {
		return nil, err
	}
	fields := make([][]float64, 0, cfg.StepsPerSim)
	for sim.StepIndex() < cfg.StepsPerSim {
		if err := sim.StepOnce(); err != nil {
			return nil, fmt.Errorf("melissa: %s step %d: %w", prob.Name(), sim.StepIndex()+1, err)
		}
		fields = append(fields, append([]float64(nil), sim.Field()...))
	}
	return fields, nil
}
