package melissa

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"melissa/internal/nn"
)

// freshSurrogate builds an untrained (seeded random) surrogate for a
// problem — checkpoint and prediction mechanics don't need a training run.
func freshSurrogate(prob Problem) *Surrogate {
	cfg := DefaultConfig()
	cfg.Problem = prob
	cfg.GridN = 8
	cfg.StepsPerSim = 6
	cfg.Hidden = []int{24, 24}
	if prob.Name() == GrayScottName {
		cfg.Dt = 1
	}
	norm := prob.Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	return newSurrogate(net, norm, surrogateMeta(cfg, prob))
}

// midPoint returns a mid-range parameter vector for a problem.
func midPoint(prob Problem) []float64 {
	min, max := prob.ParamBounds()
	p := make([]float64, len(min))
	for i := range p {
		p[i] = (min[i] + max[i]) / 2
	}
	return p
}

// TestCheckpointRoundTripBothProblems: Save → LoadSurrogate must restore a
// bit-identical predictor for every registered problem, with no
// architecture arguments supplied at load time.
func TestCheckpointRoundTripBothProblems(t *testing.T) {
	for _, name := range Problems() {
		prob, err := ProblemByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := freshSurrogate(prob)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := LoadSurrogate(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if loaded.Meta().Problem != name {
			t.Fatalf("%s: restored as %q", name, loaded.Meta().Problem)
		}
		p := midPoint(prob)
		a := s.Predict(p, 3)
		b := loaded.Predict(p, 3)
		if len(a) != len(b) || len(a) != s.OutputDim() {
			t.Fatalf("%s: prediction shapes %d/%d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: loaded surrogate predicts differently at %d: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestLegacyWeightsCompat: raw v2 nn payloads (no metadata block) still
// load through the legacy signature, bit-identically.
func TestLegacyWeightsCompat(t *testing.T) {
	s := freshSurrogate(Heat())
	var raw bytes.Buffer
	if err := s.net.SaveWeights(&raw); err != nil { // what a server checkpoint holds
		t.Fatal(err)
	}
	payload := raw.Bytes()

	// The metadata-aware loader must reject it with a pointer to the
	// legacy path, not misparse it.
	if _, err := LoadSurrogate(bytes.NewReader(payload)); err == nil {
		t.Fatal("LoadSurrogate accepted a raw weights payload")
	}

	m := s.Meta()
	loaded, err := LoadSurrogateLegacy(bytes.NewReader(payload), m.GridN, m.StepsPerSim, m.Dt, m.Hidden, m.Seed)
	if err != nil {
		t.Fatal(err)
	}
	p := midPoint(Heat())
	a := s.Predict(p, 0.03)
	b := loaded.Predict(p, 0.03)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("legacy-loaded surrogate predicts differently at %d", i)
		}
	}
}

// TestTrainedCheckpointRoundTrip covers the full path: an online-trained
// Gray–Scott surrogate survives SaveFile/LoadSurrogateFile bit-identically.
func TestTrainedCheckpointRoundTrip(t *testing.T) {
	cfg := tinyGrayScottConfig()
	res, err := RunOnline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/gs.surrogate"
	if err := res.Surrogate.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSurrogateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p := midPoint(GrayScott())
	a := res.Surrogate.Predict(p, 4)
	b := loaded.Predict(p, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trained round-trip diverged at %d", i)
		}
	}
}

// TestPredictZeroAlloc is the allocation gate for the satellite scratch
// path: steady-state PredictInto with a reused destination must not touch
// the heap.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries at random under the race detector")
	}
	s := freshSurrogate(Heat())
	params := midPoint(Heat())
	dst := make([]float64, 0, s.OutputDim())
	// Warm up the network's pooled activations for the 1-row shape.
	dst = s.PredictInto(dst, params, 0.02)
	dst = s.PredictInto(dst, params, 0.02)
	allocs := testing.AllocsPerRun(100, func() {
		dst = s.PredictInto(dst, params, 0.02)
	})
	if allocs != 0 {
		t.Fatalf("PredictInto allocates %v times per call, want 0", allocs)
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	s := freshSurrogate(GrayScott())
	params := midPoint(GrayScott())
	a := s.Predict(params, 2)
	dst := make([]float64, 3) // too short: must be grown, not truncated
	b := s.PredictInto(dst, params, 2)
	if len(b) != s.OutputDim() {
		t.Fatalf("PredictInto returned %d values", len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PredictInto diverges from Predict at %d", i)
		}
	}
}

// TestPredictParallel drives Predict and PredictBatch from many goroutines
// at once (under -race in CI) and checks every concurrent result against
// the serial answer — the regression gate for the lock-free pooled
// forward workspaces.
func TestPredictParallel(t *testing.T) {
	s := freshSurrogate(Heat())
	params := midPoint(Heat())
	want := s.Predict(params, 0.03)
	wantBatch, err := s.PredictBatch([][]float64{params, params}, []float64{0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 25
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			dst := make([]float64, 0, s.OutputDim())
			for i := 0; i < iters; i++ {
				if w%2 == 0 {
					dst = s.PredictInto(dst, params, 0.03)
					for j := range want {
						if dst[j] != want[j] {
							errCh <- fmt.Errorf("worker %d iter %d: Predict[%d] = %v, want %v", w, i, j, dst[j], want[j])
							return
						}
					}
				} else {
					got, err := s.PredictBatch([][]float64{params, params}, []float64{0.01, 0.05})
					if err != nil {
						errCh <- err
						return
					}
					for r := range wantBatch {
						for j := range wantBatch[r] {
							if got[r][j] != wantBatch[r][j] {
								errCh <- fmt.Errorf("worker %d iter %d: PredictBatch[%d][%d] diverged", w, i, r, j)
								return
							}
						}
					}
				}
			}
			errCh <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPredictWrongDimPanics(t *testing.T) {
	s := freshSurrogate(Heat())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong parameter count")
		}
	}()
	s.Predict([]float64{1, 2}, 0.1)
}

// BenchmarkPredict measures the single-query hot path with the reusable
// scratch destination — the companion of the allocation gate above.
func BenchmarkPredict(b *testing.B) {
	cfg := DefaultConfig()
	norm := Heat().Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	s := newSurrogate(net, norm, surrogateMeta(cfg, Heat()))
	params := midPoint(Heat())
	dst := make([]float64, 0, s.OutputDim())
	dst = s.PredictInto(dst, params, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.PredictInto(dst, params, 0.05)
	}
}

// BenchmarkPredictParallel measures concurrent serving throughput: with
// the pooled forward workspaces, parallel callers scale across cores
// instead of serializing on the old scratch mutex.
func BenchmarkPredictParallel(b *testing.B) {
	cfg := DefaultConfig()
	norm := Heat().Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	s := newSurrogate(net, norm, surrogateMeta(cfg, Heat()))
	params := midPoint(Heat())
	var warm [1][]float64
	warm[0] = s.Predict(params, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]float64, 0, s.OutputDim())
		for pb.Next() {
			dst = s.PredictInto(dst, params, 0.05)
		}
	})
}
