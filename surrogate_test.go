package melissa

import (
	"bytes"
	"context"
	"testing"

	"melissa/internal/nn"
)

// freshSurrogate builds an untrained (seeded random) surrogate for a
// problem — checkpoint and prediction mechanics don't need a training run.
func freshSurrogate(prob Problem) *Surrogate {
	cfg := DefaultConfig()
	cfg.Problem = prob
	cfg.GridN = 8
	cfg.StepsPerSim = 6
	cfg.Hidden = []int{24, 24}
	if prob.Name() == GrayScottName {
		cfg.Dt = 1
	}
	norm := prob.Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	return newSurrogate(net, norm, surrogateMeta(cfg, prob))
}

// midPoint returns a mid-range parameter vector for a problem.
func midPoint(prob Problem) []float64 {
	min, max := prob.ParamBounds()
	p := make([]float64, len(min))
	for i := range p {
		p[i] = (min[i] + max[i]) / 2
	}
	return p
}

// TestCheckpointRoundTripBothProblems: Save → LoadSurrogate must restore a
// bit-identical predictor for every registered problem, with no
// architecture arguments supplied at load time.
func TestCheckpointRoundTripBothProblems(t *testing.T) {
	for _, name := range Problems() {
		prob, err := ProblemByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := freshSurrogate(prob)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := LoadSurrogate(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if loaded.Meta().Problem != name {
			t.Fatalf("%s: restored as %q", name, loaded.Meta().Problem)
		}
		p := midPoint(prob)
		a := s.Predict(p, 3)
		b := loaded.Predict(p, 3)
		if len(a) != len(b) || len(a) != s.OutputDim() {
			t.Fatalf("%s: prediction shapes %d/%d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: loaded surrogate predicts differently at %d: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestLegacyWeightsCompat: raw v2 nn payloads (no metadata block) still
// load through the legacy signature, bit-identically.
func TestLegacyWeightsCompat(t *testing.T) {
	s := freshSurrogate(Heat())
	var raw bytes.Buffer
	if err := s.net.SaveWeights(&raw); err != nil { // what a server checkpoint holds
		t.Fatal(err)
	}
	payload := raw.Bytes()

	// The metadata-aware loader must reject it with a pointer to the
	// legacy path, not misparse it.
	if _, err := LoadSurrogate(bytes.NewReader(payload)); err == nil {
		t.Fatal("LoadSurrogate accepted a raw weights payload")
	}

	m := s.Meta()
	loaded, err := LoadSurrogateLegacy(bytes.NewReader(payload), m.GridN, m.StepsPerSim, m.Dt, m.Hidden, m.Seed)
	if err != nil {
		t.Fatal(err)
	}
	p := midPoint(Heat())
	a := s.Predict(p, 0.03)
	b := loaded.Predict(p, 0.03)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("legacy-loaded surrogate predicts differently at %d", i)
		}
	}
}

// TestTrainedCheckpointRoundTrip covers the full path: an online-trained
// Gray–Scott surrogate survives SaveFile/LoadSurrogateFile bit-identically.
func TestTrainedCheckpointRoundTrip(t *testing.T) {
	cfg := tinyGrayScottConfig()
	res, err := RunOnline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/gs.surrogate"
	if err := res.Surrogate.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSurrogateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p := midPoint(GrayScott())
	a := res.Surrogate.Predict(p, 4)
	b := loaded.Predict(p, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trained round-trip diverged at %d", i)
		}
	}
}

// TestPredictZeroAlloc is the allocation gate for the satellite scratch
// path: steady-state PredictInto with a reused destination must not touch
// the heap.
func TestPredictZeroAlloc(t *testing.T) {
	s := freshSurrogate(Heat())
	params := midPoint(Heat())
	dst := make([]float64, 0, s.OutputDim())
	// Warm up the network's pooled activations for the 1-row shape.
	dst = s.PredictInto(dst, params, 0.02)
	dst = s.PredictInto(dst, params, 0.02)
	allocs := testing.AllocsPerRun(100, func() {
		dst = s.PredictInto(dst, params, 0.02)
	})
	if allocs != 0 {
		t.Fatalf("PredictInto allocates %v times per call, want 0", allocs)
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	s := freshSurrogate(GrayScott())
	params := midPoint(GrayScott())
	a := s.Predict(params, 2)
	dst := make([]float64, 3) // too short: must be grown, not truncated
	b := s.PredictInto(dst, params, 2)
	if len(b) != s.OutputDim() {
		t.Fatalf("PredictInto returned %d values", len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PredictInto diverges from Predict at %d", i)
		}
	}
}

func TestPredictWrongDimPanics(t *testing.T) {
	s := freshSurrogate(Heat())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong parameter count")
		}
	}()
	s.Predict([]float64{1, 2}, 0.1)
}

// BenchmarkPredict measures the single-query hot path with the reusable
// scratch destination — the companion of the allocation gate above.
func BenchmarkPredict(b *testing.B) {
	cfg := DefaultConfig()
	norm := Heat().Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	s := newSurrogate(net, norm, surrogateMeta(cfg, Heat()))
	params := midPoint(Heat())
	dst := make([]float64, 0, s.OutputDim())
	dst = s.PredictInto(dst, params, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.PredictInto(dst, params, 0.05)
	}
}
