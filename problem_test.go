package melissa

import (
	"context"
	"math"
	"strings"
	"testing"
)

// tinyGrayScottConfig is the Gray–Scott counterpart of tinyConfig: an
// ensemble small enough for CI but exercising the full online pipeline.
func tinyGrayScottConfig() Config {
	cfg := DefaultConfig()
	cfg.Problem = GrayScott()
	cfg.Simulations = 5
	cfg.GridN = 8
	cfg.StepsPerSim = 6
	cfg.Dt = 1 // lattice units; explicitly stable for the sampled diffusivities
	cfg.MaxConcurrentClients = 3
	cfg.Hidden = []int{16}
	cfg.BatchSize = 4
	cfg.Capacity = 100
	cfg.Threshold = 8
	cfg.ValidationSims = 1
	// Validate every few batches: the tiny ensemble drains in ~8 batches
	// once reception ends, and on a fast ingestion path the Reservoir's
	// keep-busy repetition window can be short enough that a sparser
	// cadence records no validation point at all.
	cfg.ValidateEvery = 3
	return cfg
}

func TestProblemRegistry(t *testing.T) {
	names := Problems()
	for _, want := range []string{HeatName, GrayScottName} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("problem %q not registered (have %v)", want, names)
		}
	}
	if _, err := ProblemByName("no-such-problem"); err == nil {
		t.Fatal("expected error for unknown problem")
	}
	prob, err := ProblemByName(GrayScottName)
	if err != nil {
		t.Fatal(err)
	}
	if prob.Name() != GrayScottName {
		t.Fatalf("lookup returned %q", prob.Name())
	}
	min, max := prob.ParamBounds()
	if len(min) != len(prob.ParamNames()) || len(max) != len(min) {
		t.Fatalf("bounds %d/%d for %d parameters", len(min), len(max), len(prob.ParamNames()))
	}
}

func TestProblemFieldGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridN = 8
	if dim := fieldDim(Heat(), cfg); dim != 64 {
		t.Fatalf("heat field dim %d, want 64", dim)
	}
	if dim := fieldDim(GrayScott(), cfg); dim != 128 {
		t.Fatalf("gray-scott field dim %d, want 128", dim)
	}
	if got := GrayScott().Normalizer(cfg).OutputDim(); got != 128 {
		t.Fatalf("gray-scott normalizer output %d, want 128", got)
	}
}

// TestGrayScottOnlineEndToEnd is the acceptance test for the plugin API: a
// second PDE trains through RunOnline with no heat-specific types anywhere
// in the call path.
func TestGrayScottOnlineEndToEnd(t *testing.T) {
	cfg := tinyGrayScottConfig()
	res, err := RunOnline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate == nil {
		t.Fatal("no surrogate")
	}
	want := cfg.Simulations * cfg.StepsPerSim
	if res.UniqueSamples != want {
		t.Fatalf("unique %d, want %d", res.UniqueSamples, want)
	}
	if res.ValidationMSE <= 0 {
		t.Fatal("no validation recorded")
	}
	if res.Surrogate.OutputDim() != 2*cfg.GridN*cfg.GridN {
		t.Fatalf("output dim %d, want %d", res.Surrogate.OutputDim(), 2*cfg.GridN*cfg.GridN)
	}
	if res.Surrogate.ParamDim() != 4 {
		t.Fatalf("param dim %d, want 4", res.Surrogate.ParamDim())
	}

	// Predict both concentration channels at an unseen parameter point.
	params := []float64{0.035, 0.055, 0.15, 0.07}
	field := res.Surrogate.Predict(params, float64(cfg.StepsPerSim)*cfg.Dt)
	if len(field) != 2*cfg.GridN*cfg.GridN {
		t.Fatalf("field length %d", len(field))
	}
	for _, v := range field {
		if math.IsNaN(v) || v < -1 || v > 2 {
			t.Fatalf("implausible concentration %v", v)
		}
	}
}

func TestGrayScottOfflinePipeline(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyGrayScottConfig()
	info, err := GenerateDataset(context.Background(), cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Samples != cfg.Simulations*cfg.StepsPerSim {
		t.Fatalf("samples %d", info.Samples)
	}
	res, err := TrainOffline(context.Background(), cfg, dir, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate.Meta().Problem != GrayScottName {
		t.Fatalf("offline surrogate labeled %q", res.Surrogate.Meta().Problem)
	}
	if res.Samples != 2*info.Samples {
		t.Fatalf("trained %d samples, want %d", res.Samples, 2*info.Samples)
	}
}

// TestTrainOfflineRejectsMismatchedDataset: a dataset generated for one
// problem must not silently train (or panic) under another problem's
// geometry.
func TestTrainOfflineRejectsMismatchedDataset(t *testing.T) {
	dir := t.TempDir()
	heatCfg := tinyConfig()
	if _, err := GenerateDataset(context.Background(), heatCfg, dir); err != nil {
		t.Fatal(err)
	}
	gsCfg := tinyGrayScottConfig()
	_, err := TrainOffline(context.Background(), gsCfg, dir, 1, 1)
	if err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
	if !strings.Contains(err.Error(), "expects") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestSimulateMatchesProblemSolver(t *testing.T) {
	cfg := tinyGrayScottConfig()
	params := []float64{0.04, 0.06, 0.16, 0.08}
	fields, err := Simulate(GrayScott(), cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != cfg.StepsPerSim || len(fields[0]) != 2*cfg.GridN*cfg.GridN {
		t.Fatalf("shape %d × %d", len(fields), len(fields[0]))
	}
	if _, err := Simulate(GrayScott(), cfg, []float64{1}); err == nil {
		t.Fatal("expected parameter-dimension error")
	}
}

// TestCustomSamplerDimensionError locks in the satellite fix: a custom
// sampler returning the wrong dimensionality surfaces as an error from
// RunOnline instead of a panic.
func TestCustomSamplerDimensionError(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sampler = func() []float64 { return []float64{0.5, 0.5, 0.5} } // heat wants 5
	_, err := RunOnline(context.Background(), cfg)
	if err == nil {
		t.Fatal("expected dimension error")
	}
	if !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
