// Package melissa is a Go implementation of the Melissa framework from
// "High Throughput Training of Deep Surrogates from Large Ensemble Runs"
// (SC '23): online training of deep surrogate models from large ensembles
// of simulation runs, streamed directly from the solvers to a data-parallel
// training server through training buffers (FIFO, FIRO, and the paper's
// Reservoir) — no intermediate files, fault-tolerant, and reproducible.
//
// The framework is problem-agnostic: a Problem bundles a parameter space,
// a Simulator factory, a Normalizer, and the output field geometry, and
// the whole pipeline — launcher, streaming clients, training server,
// validation, offline dataset generation — runs against that interface.
// Two problems ship registered out of the box: the paper's 2D heat
// equation ("heat", the default) and 2D Gray–Scott reaction–diffusion
// ("gray-scott"). Additional scenarios plug in via RegisterProblem without
// touching the pipeline.
//
// The high-level workflow:
//
//	cfg := melissa.DefaultConfig()
//	cfg.Problem = melissa.GrayScott() // or leave nil for the heat equation
//	cfg.Simulations = 100
//	res, err := melissa.RunOnline(context.Background(), cfg)
//	field := res.Surrogate.Predict([]float64{0.03, 0.06, 0.16, 0.08}, 0.5)
//
// Surrogate checkpoints are self-describing: Save records the problem name
// and architecture, so LoadSurrogate(r) reconstructs a usable model with no
// further arguments. Trained surrogates are served at scale by
// cmd/melissa-serve: adaptive micro-batching over the wire protocol, a
// replica pool sharing one weight slab (Surrogate.NewReplica), an LRU
// prediction cache, and hot checkpoint reload fed by melissa-server's
// -surrogate-out/-publish-every atomic publishes (PublishSurrogate) — see
// docs/serving.md for topology and SLO tuning. Lower-level building blocks
// (buffers, the cluster simulator, the experiment harness reproducing the
// paper's tables and figures) live in the internal packages; the cmd/
// binaries and examples/ show them in use.
package melissa

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/launcher"
	"melissa/internal/opt"
	"melissa/internal/sampling"
	"melissa/internal/server"
	"melissa/internal/solver"
)

// BufferPolicy selects the training buffer algorithm (§3.2.3 of the paper).
type BufferPolicy string

// The three policies evaluated in the paper. Reservoir is the paper's
// contribution and the recommended default.
const (
	FIFO      BufferPolicy = "FIFO"
	FIRO      BufferPolicy = "FIRO"
	Reservoir BufferPolicy = "Reservoir"
)

// HeatParams are the inputs of one heat-equation simulation: the initial
// temperature and the four boundary temperatures (Kelvin). They are the
// typed convenience over the generic parameter vectors the Problem API
// works with.
type HeatParams struct {
	TIC, TX1, TY1, TX2, TY2 float64
}

// Vector returns the parameters in the canonical order used across the
// framework: (T_IC, T_x1, T_y1, T_x2, T_y2), matching §4.1.
func (p HeatParams) Vector() []float64 {
	return []float64{p.TIC, p.TX1, p.TY1, p.TX2, p.TY2}
}

// Config assembles an online ensemble-training run.
type Config struct {
	// Problem selects the simulation scenario; nil means the heat
	// equation, the paper's demonstrator. See RegisterProblem for adding
	// scenarios.
	Problem Problem

	// Ensemble
	Simulations int     // ensemble members to run
	GridN       int     // solver grid side; output size follows Problem.FieldShape
	StepsPerSim int     // time steps per simulation
	Dt          float64 // seconds per step
	Workers     int     // solver domain partitions per client (problems may ignore it)

	// Concurrency
	MaxConcurrentClients int // simulation clients running at once
	Ranks                int // data-parallel training processes ("GPUs")

	// Surrogate
	Hidden    []int // MLP hidden layer widths (paper: 256, 256)
	BatchSize int   // per rank (paper: 10)

	// Buffer (paper defaults: Reservoir, capacity 6000, threshold 1000 —
	// scale capacity to roughly a quarter of the ensemble's sample count)
	Buffer    BufferPolicy
	Capacity  int
	Threshold int

	// Learning rate schedule: initial 1e-3, halved every HalveEvery
	// samples down to MinLR (§4.5). HalveEvery 0 keeps it constant.
	LearningRate float64
	HalveEvery   int
	MinLR        float64

	// Validation
	ValidationSims int // held-out simulations (paper: 10); 0 disables
	ValidateEvery  int // batches between validations (paper: 100)

	// Fault tolerance
	MaxClientRetries  int
	MaxServerRestarts int
	WatchdogTimeout   time.Duration
	CheckpointPath    string // server checkpoint location; "" disables

	// WarmStart, when set, initializes training from an existing
	// surrogate's weights instead of a random init — the §5 production
	// workflow: offline pre-training on a reduced dataset followed by
	// online re-training at scale. The architecture must match.
	WarmStart *Surrogate

	// Design selects the experimental design drawing the simulation
	// parameters: "monte-carlo" (default), "latin-hypercube" or "halton"
	// (§3.1).
	Design string
	// Sampler, when set, overrides Design with a custom draw function
	// returning points in the unit hypercube [0,1)^d, d the problem's
	// parameter count. This is the hook for adaptive experimental designs
	// (§5 future work; see examples/adaptive-sampling).
	Sampler func() []float64

	// Seed drives every stochastic component (§3.1).
	Seed uint64
}

// problem returns the configured problem, defaulting to the heat equation.
func (c Config) problem() Problem {
	if c.Problem != nil {
		return c.Problem
	}
	return Heat()
}

// DefaultConfig returns a laptop-scale configuration with the paper's
// ratios.
func DefaultConfig() Config {
	return Config{
		Simulations:          20,
		GridN:                16,
		StepsPerSim:          20,
		Dt:                   0.01,
		MaxConcurrentClients: 4,
		Ranks:                1,
		Hidden:               []int{64, 64},
		BatchSize:            10,
		Buffer:               Reservoir,
		Capacity:             200,
		Threshold:            30,
		LearningRate:         1e-3,
		HalveEvery:           10000,
		MinLR:                2.5e-4,
		ValidationSims:       2,
		ValidateEvery:        50,
		MaxClientRetries:     2,
		MaxServerRestarts:    1,
		Seed:                 2023,
	}
}

func (c Config) validate() error {
	if c.Simulations < 1 {
		return fmt.Errorf("melissa: Simulations=%d must be ≥ 1", c.Simulations)
	}
	if c.GridN < 1 || c.StepsPerSim < 1 {
		return fmt.Errorf("melissa: grid %d × steps %d invalid", c.GridN, c.StepsPerSim)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("melissa: Dt=%g must be > 0 — the surrogate's time input degenerates otherwise", c.Dt)
	}
	if c.Ranks < 1 || c.BatchSize < 1 {
		return fmt.Errorf("melissa: ranks %d batch %d invalid", c.Ranks, c.BatchSize)
	}
	switch c.Buffer {
	case FIFO, FIRO, Reservoir:
	default:
		return fmt.Errorf("melissa: unknown buffer policy %q", c.Buffer)
	}
	if c.Capacity < 1 {
		return fmt.Errorf("melissa: buffer Capacity=%d must be ≥ 1", c.Capacity)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("melissa: buffer Threshold=%d must be ≥ 0", c.Threshold)
	}
	if c.Threshold > c.Capacity {
		return fmt.Errorf("melissa: buffer Threshold=%d exceeds Capacity=%d — extraction could never start", c.Threshold, c.Capacity)
	}
	return nil
}

// Point is one point of a loss curve.
type Point struct {
	Batch   int
	Samples int
	MSE     float64
}

// RunResult reports a completed online training run.
type RunResult struct {
	// Surrogate is the trained model, ready for prediction.
	Surrogate *Surrogate
	// Batches and Samples count the synchronized training steps and the
	// samples consumed (including Reservoir repetitions).
	Batches int
	Samples int
	// UniqueSamples counts distinct time steps trained on.
	UniqueSamples int
	// ValidationMSE is the final validation loss (normalized units);
	// ValidationMSEKelvin the same in the problem's physical units²
	// (Kelvin² for the heat equation, hence the name).
	ValidationMSE       float64
	ValidationMSEKelvin float64
	// ValidationCurve and TrainCurve are the recorded histories.
	ValidationCurve []Point
	TrainCurve      []Point
	// Throughput is samples consumed per wall-clock second.
	Throughput float64
	// WallTime is the total training duration.
	WallTime time.Duration
	// ClientRestarts and ServerRestarts count fault recoveries.
	ClientRestarts int
	ServerRestarts int
}

// RunOnline executes the full online workflow for the configured problem:
// launcher, training server, and ensemble clients streaming solver data,
// with fault tolerance, exactly as described in §3 of the paper — scaled to
// the local machine (clients and server ranks are processes-in-goroutines
// connected over loopback TCP).
func RunOnline(ctx context.Context, cfg Config) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	prob := cfg.problem()
	space, err := problemSpace(prob)
	if err != nil {
		return nil, err
	}
	norm := prob.Normalizer(cfg)

	var design sampling.Sampler
	if cfg.Sampler != nil {
		// Validate the custom sampler's dimensionality on its first draw,
		// before any solver time is spent on the validation set; the drawn
		// point is replayed so the ensemble stream is unchanged. The
		// launcher re-checks every subsequent draw.
		first := cfg.Sampler()
		if len(first) != space.Dim() {
			return nil, fmt.Errorf("melissa: custom sampler returned a %d-dimensional point, problem %q wants %d", len(first), prob.Name(), space.Dim())
		}
		design = &replaySampler{first: first, rest: funcSampler{dim: space.Dim(), fn: cfg.Sampler}}
	} else {
		kind := sampling.Kind(cfg.Design)
		if cfg.Design == "" {
			kind = sampling.MonteCarloKind
		}
		design, err = sampling.New(kind, space.Dim(), cfg.Seed, 0)
		if err != nil {
			return nil, err
		}
	}

	var valSet *core.ValidationSet
	if cfg.ValidationSims > 0 {
		vs, err := generateValidation(cfg, prob, space, norm)
		if err != nil {
			return nil, err
		}
		valSet = vs
	}

	var schedule opt.Schedule
	if cfg.HalveEvery > 0 {
		schedule = opt.Halving{Initial: cfg.LearningRate, EverySamples: cfg.HalveEvery, Min: cfg.MinLR}
	} else {
		schedule = opt.Constant(cfg.LearningRate)
	}

	var initialWeights []byte
	if cfg.WarmStart != nil {
		var buf bytes.Buffer
		if err := cfg.WarmStart.net.SaveWeights(&buf); err != nil {
			return nil, err
		}
		initialWeights = buf.Bytes()
	}

	lcfg := launcher.Config{
		Server: server.Config{
			Ranks: cfg.Ranks,
			Buffer: buffer.Config{
				Kind:      buffer.Kind(cfg.Buffer),
				Capacity:  cfg.Capacity,
				Threshold: cfg.Threshold,
				Seed:      cfg.Seed,
			},
			Trainer: core.TrainerConfig{
				BatchSize: cfg.BatchSize,
				Model: core.ModelSpec{
					InputDim:  norm.InputDim(),
					Hidden:    cfg.Hidden,
					OutputDim: norm.OutputDim(),
					Seed:      cfg.Seed,
				},
				Normalizer:       coreNormalizer(norm),
				InitialWeights:   initialWeights,
				LearningRate:     cfg.LearningRate,
				Schedule:         schedule,
				Validation:       valSet,
				ValidateEvery:    cfg.ValidateEvery,
				TrackOccurrences: true,
			},
			WatchdogTimeout: cfg.WatchdogTimeout,
			CheckpointPath:  cfg.CheckpointPath,
		},
		NewSim:               func(params []float64) (solver.Simulator, error) { return prob.NewSimulator(cfg, params) },
		Steps:                cfg.StepsPerSim,
		Dt:                   cfg.Dt,
		Design:               design,
		Space:                space,
		Simulations:          cfg.Simulations,
		MaxConcurrentClients: cfg.MaxConcurrentClients,
		MaxClientRetries:     cfg.MaxClientRetries,
		MaxServerRestarts:    cfg.MaxServerRestarts,
	}
	l, err := launcher.New(lcfg)
	if err != nil {
		return nil, err
	}
	res, err := l.Run(ctx)
	if err != nil {
		return nil, err
	}

	m := res.Metrics
	out := &RunResult{
		Surrogate:      newSurrogate(res.Network, norm, surrogateMeta(cfg, prob)),
		Batches:        m.Batches(),
		Samples:        m.Samples(),
		UniqueSamples:  len(m.Occurrences()),
		Throughput:     m.Throughput(),
		WallTime:       m.WallTime(),
		ClientRestarts: res.ClientRestarts,
		ServerRestarts: res.ServerRestarts,
	}
	if v, ok := m.FinalValidation(); ok {
		out.ValidationMSE = v
		out.ValidationMSEKelvin = norm.RawMSE(v)
	}
	for _, p := range m.Validation() {
		out.ValidationCurve = append(out.ValidationCurve, Point{Batch: p.Batch, Samples: p.Samples, MSE: p.Value})
	}
	for _, p := range m.TrainLoss() {
		out.TrainCurve = append(out.TrainCurve, Point{Batch: p.Batch, Samples: p.Samples, MSE: p.Value})
	}
	return out, nil
}

// funcSampler adapts a user draw function to the sampling interface. Draw
// dimensionality is validated by the launcher, which surfaces a mismatch
// as an error from RunOnline instead of a panic mid-ensemble.
type funcSampler struct {
	dim int
	fn  func() []float64
}

func (f funcSampler) Next() []float64 { return f.fn() }

func (f funcSampler) Dim() int { return f.dim }

// replaySampler re-emits the point consumed by the up-front dimensionality
// check before delegating to the live stream.
type replaySampler struct {
	first []float64
	rest  funcSampler
}

func (r *replaySampler) Next() []float64 {
	if r.first != nil {
		p := r.first
		r.first = nil
		return p
	}
	return r.rest.Next()
}

func (r *replaySampler) Dim() int { return r.rest.Dim() }

// generateValidation produces the held-out set with a decorrelated design
// stream.
func generateValidation(cfg Config, prob Problem, space sampling.Space, norm Normalizer) (*core.ValidationSet, error) {
	design := sampling.NewMonteCarlo(space.Dim(), cfg.Seed^0x5eed0ff5)
	var samples []buffer.Sample
	for i := 0; i < cfg.ValidationSims; i++ {
		params := space.Scale(design.Next())
		err := streamSteps(cfg, prob, params, func(step int, input, output []float32) error {
			samples = append(samples, buffer.Sample{SimID: -1 - i, Step: step, Input: input, Output: output})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return core.NewValidationSet(coreNormalizer(norm), samples), nil
}

// Solve runs the reference heat-equation solver directly, returning the
// temperature field after each step — the typed convenience over
// Simulate(Heat(), ...).
func Solve(p HeatParams, gridN, steps int, dt float64) ([][]float64, error) {
	return Simulate(Heat(), Config{GridN: gridN, StepsPerSim: steps, Dt: dt}, p.Vector())
}
