// Package melissa is a Go implementation of the Melissa framework from
// "High Throughput Training of Deep Surrogates from Large Ensemble Runs"
// (SC '23): online training of deep surrogate models from large ensembles
// of simulation runs, streamed directly from the solvers to a data-parallel
// training server through training buffers (FIFO, FIRO, and the paper's
// Reservoir) — no intermediate files, fault-tolerant, and reproducible.
//
// The package exposes the high-level workflow:
//
//	cfg := melissa.DefaultConfig()
//	cfg.Simulations = 100
//	res, err := melissa.RunOnline(context.Background(), cfg)
//	field := res.Surrogate.Predict(melissa.HeatParams{...}, 0.5)
//
// Lower-level building blocks (buffers, the cluster simulator, the
// experiment harness reproducing the paper's tables and figures) live in
// the internal packages; the cmd/ binaries and examples/ show them in use.
package melissa

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/launcher"
	"melissa/internal/opt"
	"melissa/internal/sampling"
	"melissa/internal/server"
	"melissa/internal/solver"
)

// BufferPolicy selects the training buffer algorithm (§3.2.3 of the paper).
type BufferPolicy string

// The three policies evaluated in the paper. Reservoir is the paper's
// contribution and the recommended default.
const (
	FIFO      BufferPolicy = "FIFO"
	FIRO      BufferPolicy = "FIRO"
	Reservoir BufferPolicy = "Reservoir"
)

// HeatParams are the inputs of one heat-equation simulation: the initial
// temperature and the four boundary temperatures (Kelvin).
type HeatParams struct {
	TIC, TX1, TY1, TX2, TY2 float64
}

func (p HeatParams) toSolver() solver.Params {
	return solver.Params{TIC: p.TIC, Tx1: p.TX1, Ty1: p.TY1, Tx2: p.TX2, Ty2: p.TY2}
}

// Config assembles an online ensemble-training run.
type Config struct {
	// Ensemble
	Simulations int     // ensemble members to run
	GridN       int     // solver grid side; the surrogate predicts N² values
	StepsPerSim int     // time steps per simulation
	Dt          float64 // seconds per step

	// Concurrency
	MaxConcurrentClients int // simulation clients running at once
	Ranks                int // data-parallel training processes ("GPUs")

	// Surrogate
	Hidden    []int // MLP hidden layer widths (paper: 256, 256)
	BatchSize int   // per rank (paper: 10)

	// Buffer (paper defaults: Reservoir, capacity 6000, threshold 1000 —
	// scale capacity to roughly a quarter of the ensemble's sample count)
	Buffer    BufferPolicy
	Capacity  int
	Threshold int

	// Learning rate schedule: initial 1e-3, halved every HalveEvery
	// samples down to MinLR (§4.5). HalveEvery 0 keeps it constant.
	LearningRate float64
	HalveEvery   int
	MinLR        float64

	// Validation
	ValidationSims int // held-out simulations (paper: 10); 0 disables
	ValidateEvery  int // batches between validations (paper: 100)

	// Fault tolerance
	MaxClientRetries  int
	MaxServerRestarts int
	WatchdogTimeout   time.Duration
	CheckpointPath    string // server checkpoint location; "" disables

	// WarmStart, when set, initializes training from an existing
	// surrogate's weights instead of a random init — the §5 production
	// workflow: offline pre-training on a reduced dataset followed by
	// online re-training at scale. The architecture must match.
	WarmStart *Surrogate

	// Design selects the experimental design drawing the simulation
	// parameters: "monte-carlo" (default), "latin-hypercube" or "halton"
	// (§3.1).
	Design string
	// Sampler, when set, overrides Design with a custom draw function
	// returning points in the unit hypercube [0,1)^5. This is the hook
	// for adaptive experimental designs (§5 future work; see
	// examples/adaptive-sampling).
	Sampler func() []float64

	// Seed drives every stochastic component (§3.1).
	Seed uint64
}

// DefaultConfig returns a laptop-scale configuration with the paper's
// ratios.
func DefaultConfig() Config {
	return Config{
		Simulations:          20,
		GridN:                16,
		StepsPerSim:          20,
		Dt:                   0.01,
		MaxConcurrentClients: 4,
		Ranks:                1,
		Hidden:               []int{64, 64},
		BatchSize:            10,
		Buffer:               Reservoir,
		Capacity:             200,
		Threshold:            30,
		LearningRate:         1e-3,
		HalveEvery:           10000,
		MinLR:                2.5e-4,
		ValidationSims:       2,
		ValidateEvery:        50,
		MaxClientRetries:     2,
		MaxServerRestarts:    1,
		Seed:                 2023,
	}
}

func (c Config) validate() error {
	if c.Simulations < 1 {
		return fmt.Errorf("melissa: Simulations=%d must be ≥ 1", c.Simulations)
	}
	if c.GridN < 1 || c.StepsPerSim < 1 {
		return fmt.Errorf("melissa: grid %d × steps %d invalid", c.GridN, c.StepsPerSim)
	}
	if c.Ranks < 1 || c.BatchSize < 1 {
		return fmt.Errorf("melissa: ranks %d batch %d invalid", c.Ranks, c.BatchSize)
	}
	switch c.Buffer {
	case FIFO, FIRO, Reservoir:
	default:
		return fmt.Errorf("melissa: unknown buffer policy %q", c.Buffer)
	}
	return nil
}

// Point is one point of a loss curve.
type Point struct {
	Batch   int
	Samples int
	MSE     float64
}

// RunResult reports a completed online training run.
type RunResult struct {
	// Surrogate is the trained model, ready for prediction.
	Surrogate *Surrogate
	// Batches and Samples count the synchronized training steps and the
	// samples consumed (including Reservoir repetitions).
	Batches int
	Samples int
	// UniqueSamples counts distinct time steps trained on.
	UniqueSamples int
	// ValidationMSE is the final validation loss (normalized units);
	// ValidationMSEKelvin the same in Kelvin².
	ValidationMSE       float64
	ValidationMSEKelvin float64
	// ValidationCurve and TrainCurve are the recorded histories.
	ValidationCurve []Point
	TrainCurve      []Point
	// Throughput is samples consumed per wall-clock second.
	Throughput float64
	// WallTime is the total training duration.
	WallTime time.Duration
	// ClientRestarts and ServerRestarts count fault recoveries.
	ClientRestarts int
	ServerRestarts int
}

// RunOnline executes the full online workflow: launcher, training server,
// and ensemble clients streaming solver data, with fault tolerance, exactly
// as described in §3 of the paper — scaled to the local machine (clients
// and server ranks are processes-in-goroutines connected over loopback
// TCP).
func RunOnline(ctx context.Context, cfg Config) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	norm := core.NewHeatNormalizer(cfg.GridN*cfg.GridN, float64(cfg.StepsPerSim)*cfg.Dt)

	var valSet *core.ValidationSet
	if cfg.ValidationSims > 0 {
		vs, err := generateValidation(cfg, norm)
		if err != nil {
			return nil, err
		}
		valSet = vs
	}

	var schedule opt.Schedule
	if cfg.HalveEvery > 0 {
		schedule = opt.Halving{Initial: cfg.LearningRate, EverySamples: cfg.HalveEvery, Min: cfg.MinLR}
	} else {
		schedule = opt.Constant(cfg.LearningRate)
	}

	var initialWeights []byte
	if cfg.WarmStart != nil {
		var buf bytes.Buffer
		if err := cfg.WarmStart.Save(&buf); err != nil {
			return nil, err
		}
		initialWeights = buf.Bytes()
	}

	var design sampling.Sampler
	if cfg.Sampler != nil {
		design = funcSampler{dim: 5, fn: cfg.Sampler}
	} else {
		kind := sampling.Kind(cfg.Design)
		if cfg.Design == "" {
			kind = sampling.MonteCarloKind
		}
		var err error
		design, err = sampling.New(kind, 5, cfg.Seed, 0)
		if err != nil {
			return nil, err
		}
	}

	lcfg := launcher.Config{
		Server: server.Config{
			Ranks: cfg.Ranks,
			Buffer: buffer.Config{
				Kind:      buffer.Kind(cfg.Buffer),
				Capacity:  cfg.Capacity,
				Threshold: cfg.Threshold,
				Seed:      cfg.Seed,
			},
			Trainer: core.TrainerConfig{
				BatchSize: cfg.BatchSize,
				Model: core.ModelSpec{
					InputDim:  norm.InputDim(),
					Hidden:    cfg.Hidden,
					OutputDim: norm.OutputDim(),
					Seed:      cfg.Seed,
				},
				Normalizer:       norm,
				InitialWeights:   initialWeights,
				LearningRate:     cfg.LearningRate,
				Schedule:         schedule,
				Validation:       valSet,
				ValidateEvery:    cfg.ValidateEvery,
				TrackOccurrences: true,
			},
			WatchdogTimeout: cfg.WatchdogTimeout,
			CheckpointPath:  cfg.CheckpointPath,
		},
		Solver:               solver.Config{N: cfg.GridN, Steps: cfg.StepsPerSim, Dt: cfg.Dt},
		Design:               design,
		Space:                sampling.HeatSpace(),
		Simulations:          cfg.Simulations,
		MaxConcurrentClients: cfg.MaxConcurrentClients,
		MaxClientRetries:     cfg.MaxClientRetries,
		MaxServerRestarts:    cfg.MaxServerRestarts,
	}
	l, err := launcher.New(lcfg)
	if err != nil {
		return nil, err
	}
	res, err := l.Run(ctx)
	if err != nil {
		return nil, err
	}

	m := res.Metrics
	out := &RunResult{
		Surrogate: &Surrogate{
			net:   res.Network,
			norm:  norm,
			gridN: cfg.GridN,
		},
		Batches:        m.Batches(),
		Samples:        m.Samples(),
		UniqueSamples:  len(m.Occurrences()),
		Throughput:     m.Throughput(),
		WallTime:       m.WallTime(),
		ClientRestarts: res.ClientRestarts,
		ServerRestarts: res.ServerRestarts,
	}
	if v, ok := m.FinalValidation(); ok {
		out.ValidationMSE = v
		out.ValidationMSEKelvin = norm.KelvinMSE(v)
	}
	for _, p := range m.Validation() {
		out.ValidationCurve = append(out.ValidationCurve, Point{Batch: p.Batch, Samples: p.Samples, MSE: p.Value})
	}
	for _, p := range m.TrainLoss() {
		out.TrainCurve = append(out.TrainCurve, Point{Batch: p.Batch, Samples: p.Samples, MSE: p.Value})
	}
	return out, nil
}

// funcSampler adapts a user draw function to the sampling interface.
type funcSampler struct {
	dim int
	fn  func() []float64
}

func (f funcSampler) Next() []float64 {
	p := f.fn()
	if len(p) != f.dim {
		panic(fmt.Sprintf("melissa: custom sampler returned %d dims, want %d", len(p), f.dim))
	}
	return p
}

func (f funcSampler) Dim() int { return f.dim }

// generateValidation produces the held-out set with a decorrelated design
// stream.
func generateValidation(cfg Config, norm core.HeatNormalizer) (*core.ValidationSet, error) {
	design := sampling.NewMonteCarlo(5, cfg.Seed^0x5eed0ff5)
	space := sampling.HeatSpace()
	var samples []buffer.Sample
	for i := 0; i < cfg.ValidationSims; i++ {
		p, err := solver.ParamsFromVector(space.Scale(design.Next()))
		if err != nil {
			return nil, err
		}
		sim, err := solver.New(solver.Config{N: cfg.GridN, Steps: cfg.StepsPerSim, Dt: cfg.Dt}, p)
		if err != nil {
			return nil, err
		}
		base := p.Vector()
		err = sim.Run(func(step int, field []float64) {
			input := make([]float32, 0, 6)
			for _, v := range base {
				input = append(input, float32(v))
			}
			input = append(input, float32(float64(step)*cfg.Dt))
			out := make([]float32, len(field))
			for j, v := range field {
				out[j] = float32(v)
			}
			samples = append(samples, buffer.Sample{SimID: -1 - i, Step: step, Input: input, Output: out})
		})
		if err != nil {
			return nil, err
		}
	}
	return core.NewValidationSet(norm, samples), nil
}

// Solve runs the reference heat-equation solver directly, returning the
// temperature field after each step — the ground truth that examples
// compare surrogate predictions against.
func Solve(p HeatParams, gridN, steps int, dt float64) ([][]float64, error) {
	sim, err := solver.New(solver.Config{N: gridN, Steps: steps, Dt: dt}, p.toSolver())
	if err != nil {
		return nil, err
	}
	var fields [][]float64
	err = sim.Run(func(_ int, field []float64) {
		cp := make([]float64, len(field))
		copy(cp, field)
		fields = append(fields, cp)
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}
