package melissa

// End-to-end test of the serving tier binaries: melissa-server trains a
// small ensemble and publishes a self-describing surrogate checkpoint,
// melissa-serve loads and serves it over TCP, and the predict client
// queries it — the full train → publish → serve → query pipeline a user
// would run from a shell.

import (
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"melissa/internal/client"
)

func TestServeBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs separate processes")
	}
	bdir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"melissa-server", "melissa-client", "melissa-serve"} {
		bin := filepath.Join(bdir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// Train a tiny ensemble, publishing the surrogate periodically and at
	// the end (exercising both publish paths).
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addrs.txt")
	ckpt := filepath.Join(dir, "model.mlsg")
	const clients = 3
	srv := exec.Command(bins["melissa-server"],
		"-ranks", "1", "-clients", fmt.Sprint(clients), "-problem", HeatName,
		"-grid", "8", "-steps", "6", "-batch", "4", "-hidden", "24,24",
		"-buffer", "Reservoir", "-capacity", "60", "-threshold", "8",
		"-addr-file", addrFile, "-surrogate-out", ckpt, "-publish-every", "5")
	var srvOut strings.Builder
	srv.Stdout = &srvOut
	srv.Stderr = &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && strings.TrimSpace(string(data)) != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never published addresses:\n%s", srvOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	errCh := make(chan error, clients)
	for id := 0; id < clients; id++ {
		go func(id int) {
			out, err := exec.Command(bins["melissa-client"],
				"-id", fmt.Sprint(id), "-problem", HeatName, "-grid", "8", "-steps", "6",
				"-addr-file", addrFile).CombinedOutput()
			if err != nil {
				err = fmt.Errorf("client %d: %v\n%s", id, err, out)
			}
			errCh <- err
		}(id)
	}
	for i := 0; i < clients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server exited with %v:\n%s", err, srvOut.String())
	}
	if !strings.Contains(srvOut.String(), "surrogate checkpoint published") {
		t.Fatalf("server output missing publish line:\n%s", srvOut.String())
	}

	// The published checkpoint must be self-describing and loadable.
	sur, err := LoadSurrogateFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	// Serve it and query over the wire.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	const maxBatch = 8
	serveCmd := exec.Command(bins["melissa-serve"],
		"-checkpoint", ckpt, "-addr", addr, "-replicas", "2",
		"-max-batch", fmt.Sprint(maxBatch), "-cache", "64")
	var serveOut strings.Builder
	serveCmd.Stdout = &serveOut
	serveCmd.Stderr = &serveOut
	if err := serveCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer serveCmd.Process.Kill()

	var pc *client.PredictConn
	deadline = time.Now().Add(15 * time.Second)
	for {
		pc, err = client.DialPredict(addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("melissa-serve never came up: %v\n%s", err, serveOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer pc.Close()

	info, err := pc.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Problem != HeatName || int(info.OutputDim) != sur.OutputDim() || info.Epoch != 1 {
		t.Fatalf("bad server info %+v", info)
	}

	// Wire answers must be bit-identical to a local replica with the same
	// batch shape.
	params := []float32{300, 200, 400, 250, 350}
	rep := sur.NewReplica(maxBatch)
	var want []float32
	err = rep.PredictBatchRaw(1,
		func(int) ([]float32, float32) { return params, 2 },
		func(_ int, field []float32) { want = append([]float32(nil), field...) })
	if err != nil {
		t.Fatal(err)
	}
	got, epoch, err := pc.Predict(params, 2)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || len(got) != len(want) {
		t.Fatalf("predict returned %d floats at epoch %d", len(got), epoch)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("served field diverges from local replica at %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Admin reload over the wire re-reads the configured checkpoint.
	newEpoch, err := pc.Reload("")
	if err != nil {
		t.Fatal(err)
	}
	if newEpoch != 2 {
		t.Fatalf("reload returned epoch %d, want 2", newEpoch)
	}
	if _, epoch, err = pc.Predict(params, 2); err != nil || epoch != 2 {
		t.Fatalf("predict after reload: epoch %d, err %v", epoch, err)
	}
}
