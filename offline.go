package melissa

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/dataset"
	"melissa/internal/nn"
	"melissa/internal/opt"
	"melissa/internal/sampling"
	"melissa/internal/tensor"
)

// DatasetInfo describes a generated offline dataset.
type DatasetInfo struct {
	Dir         string
	Simulations int
	Samples     int
	Bytes       int64
}

// GenerateDataset runs the ensemble like RunOnline but writes every time
// step to disk (one binary file per simulation) instead of streaming it to
// a server — the paper's offline data-generation mode (§4.6: "the
// framework reveals itself also useful to quickly generate datasets by
// leveraging the parallelism of its clients"). Generation is parallel
// across MaxConcurrentClients solver instances and works for any
// configured Problem.
func GenerateDataset(ctx context.Context, cfg Config, dir string) (*DatasetInfo, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	prob := cfg.problem()
	space, err := problemSpace(prob)
	if err != nil {
		return nil, err
	}
	design := sampling.NewMonteCarlo(space.Dim(), cfg.Seed)
	params := make([][]float64, cfg.Simulations)
	for i := range params {
		params[i] = space.Scale(design.Next())
	}

	concurrency := cfg.MaxConcurrentClients
	if concurrency < 1 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, concurrency)
	errs := make([]error, cfg.Simulations)
	var wg sync.WaitGroup
	for sim := 0; sim < cfg.Simulations; sim++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(sim int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[sim] = writeSimulation(dir, sim, cfg, prob, params[sim])
		}(sim)
	}
	wg.Wait()
	for sim, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("melissa: generating sim %d: %w", sim, err)
		}
	}

	ds, err := dataset.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	defer ds.Close()
	return &DatasetInfo{
		Dir:         dir,
		Simulations: ds.Sims(),
		Samples:     ds.Len(),
		Bytes:       ds.Bytes(),
	}, nil
}

func writeSimulation(dir string, simID int, cfg Config, prob Problem, params []float64) error {
	w, err := dataset.Create(dir, simID, cfg.StepsPerSim, len(params)+1, fieldDim(prob, cfg))
	if err != nil {
		return err
	}
	err = streamSteps(cfg, prob, params, func(_ int, input, output []float32) error {
		return w.WriteStep(input, output)
	})
	if err != nil {
		return err
	}
	return w.Close()
}

// TrainOffline is the classical baseline the paper compares against (§4.6):
// multi-epoch training over a fixed on-disk dataset served by a
// multi-worker loader. Combined with GenerateDataset and Config.WarmStart,
// it supports the §5 production workflow — offline pre-training on a small
// dataset followed by online re-training at scale.
func TrainOffline(ctx context.Context, cfg Config, dir string, epochs, loaderWorkers int) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if epochs < 1 {
		return nil, fmt.Errorf("melissa: epochs=%d must be ≥ 1", epochs)
	}
	ds, err := dataset.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	defer ds.Close()

	prob := cfg.problem()
	space, err := problemSpace(prob)
	if err != nil {
		return nil, err
	}
	norm := prob.Normalizer(cfg)
	if inDim, fDim := ds.Dims(); inDim != norm.InputDim() || fDim != norm.OutputDim() {
		return nil, fmt.Errorf("melissa: dataset %s has %d-dim inputs and %d-value fields, problem %q expects %d/%d — generated for a different problem or geometry?",
			dir, inDim, fDim, prob.Name(), norm.InputDim(), norm.OutputDim())
	}
	cnorm := coreNormalizer(norm)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	if cfg.WarmStart != nil {
		var buf bytes.Buffer
		if err := cfg.WarmStart.net.SaveWeights(&buf); err != nil {
			return nil, err
		}
		if err := net.LoadWeights(&buf); err != nil {
			return nil, fmt.Errorf("melissa: warm start: %w", err)
		}
	}

	var valSet *core.ValidationSet
	if cfg.ValidationSims > 0 {
		valSet, err = generateValidation(cfg, prob, space, norm)
		if err != nil {
			return nil, err
		}
	}

	var schedule opt.Schedule = opt.Constant(cfg.LearningRate)
	if cfg.HalveEvery > 0 {
		schedule = opt.Halving{Initial: cfg.LearningRate, EverySamples: cfg.HalveEvery, Min: cfg.MinLR}
	}
	adam := opt.NewAdam(cfg.LearningRate)
	lossFn := nn.NewMSELoss()
	metrics := core.NewMetrics(false)
	metrics.Begin()

	loader := dataset.NewLoader(ds, cfg.BatchSize*cfg.Ranks, loaderWorkers, cfg.Seed^0x0ff1e)
	// Reusable batch storage: full batches use the preallocated matrices
	// directly, the final partial batch of each epoch a prefix view.
	batchIn := tensor.New(cfg.BatchSize*cfg.Ranks, norm.InputDim())
	batchOut := tensor.New(cfg.BatchSize*cfg.Ranks, norm.OutputDim())
	var inView, outView tensor.Matrix
	for epoch := 0; epoch < epochs; epoch++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		err := loader.Epoch(func(batch []buffer.Sample) error {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			batchIn.ViewRows(&inView, 0, len(batch))
			batchOut.ViewRows(&outView, 0, len(batch))
			bi, bo := &inView, &outView
			core.BuildBatch(cnorm, batch, bi, bo)
			net.ZeroGrad()
			pred := net.Forward(bi)
			loss := lossFn.Forward(pred, bo)
			net.Backward(lossFn.Backward(pred, bo))
			b, s := metrics.RecordStep(len(batch))
			metrics.RecordTrainLoss(b, s, loss)
			adam.SetLR(schedule.LR(s))
			adam.StepFlat(net.FlatParams(), net.FlatGrads())
			if valSet != nil && cfg.ValidateEvery > 0 && b%cfg.ValidateEvery == 0 {
				metrics.RecordValidation(b, s, core.Validate(net, valSet, cfg.BatchSize*4))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	metrics.Finish()

	out := &RunResult{
		Surrogate:     newSurrogate(net, norm, surrogateMeta(cfg, prob)),
		Batches:       metrics.Batches(),
		Samples:       metrics.Samples(),
		UniqueSamples: ds.Len(),
		Throughput:    metrics.Throughput(),
		WallTime:      metrics.WallTime(),
	}
	if valSet != nil {
		v := core.Validate(net, valSet, cfg.BatchSize*4)
		metrics.RecordValidation(metrics.Batches(), metrics.Samples(), v)
		out.ValidationMSE = v
		out.ValidationMSEKelvin = norm.RawMSE(v)
	}
	for _, p := range metrics.Validation() {
		out.ValidationCurve = append(out.ValidationCurve, Point{Batch: p.Batch, Samples: p.Samples, MSE: p.Value})
	}
	for _, p := range metrics.TrainLoss() {
		out.TrainCurve = append(out.TrainCurve, Point{Batch: p.Batch, Samples: p.Samples, MSE: p.Value})
	}
	return out, nil
}
