package melissa

import (
	"context"
	"testing"
)

func TestGenerateDataset(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	info, err := GenerateDataset(context.Background(), cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Simulations != cfg.Simulations {
		t.Fatalf("sims %d, want %d", info.Simulations, cfg.Simulations)
	}
	if info.Samples != cfg.Simulations*cfg.StepsPerSim {
		t.Fatalf("samples %d", info.Samples)
	}
	if info.Bytes <= 0 {
		t.Fatal("no bytes recorded")
	}
}

func TestGenerateDatasetValidatesConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.Simulations = 0
	if _, err := GenerateDataset(context.Background(), cfg, t.TempDir()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestTrainOffline(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	if _, err := GenerateDataset(context.Background(), cfg, dir); err != nil {
		t.Fatal(err)
	}
	res, err := TrainOffline(context.Background(), cfg, dir, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Simulations * cfg.StepsPerSim
	if res.UniqueSamples != want {
		t.Fatalf("unique %d, want %d", res.UniqueSamples, want)
	}
	if res.Samples != 3*want { // three epochs
		t.Fatalf("samples %d, want %d", res.Samples, 3*want)
	}
	if res.ValidationMSE <= 0 {
		t.Fatal("no validation")
	}
	if res.Surrogate == nil || len(res.Surrogate.PredictHeat(HeatParams{TIC: 300, TX1: 300, TY1: 300, TX2: 300, TY2: 300}, 0.02)) != cfg.GridN*cfg.GridN {
		t.Fatal("surrogate broken")
	}
	// Multi-epoch training must reduce the training loss.
	tc := res.TrainCurve
	if len(tc) < 2 || tc[len(tc)-1].MSE >= tc[0].MSE {
		t.Fatalf("training loss did not decrease: %v -> %v", tc[0].MSE, tc[len(tc)-1].MSE)
	}
}

func TestTrainOfflineErrors(t *testing.T) {
	cfg := tinyConfig()
	if _, err := TrainOffline(context.Background(), cfg, t.TempDir(), 1, 2); err == nil {
		t.Fatal("expected error for empty dataset dir")
	}
	dir := t.TempDir()
	if _, err := GenerateDataset(context.Background(), cfg, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainOffline(context.Background(), cfg, dir, 0, 2); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}

// TestWarmStartWorkflow exercises the §5 pipeline: offline pre-training
// followed by warm-started online re-training. The warm-started run's first
// validation must already be at the pre-trained level (far below a cold
// start's first validation).
func TestWarmStartWorkflow(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	if _, err := GenerateDataset(context.Background(), cfg, dir); err != nil {
		t.Fatal(err)
	}
	pre, err := TrainOffline(context.Background(), cfg, dir, 10, 2)
	if err != nil {
		t.Fatal(err)
	}

	warmCfg := tinyConfig()
	warmCfg.WarmStart = pre.Surrogate
	warm, err := RunOnline(context.Background(), warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunOnline(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.ValidationCurve) == 0 || len(cold.ValidationCurve) == 0 {
		t.Fatal("missing validation curves")
	}
	warmFirst := warm.ValidationCurve[0].MSE
	coldFirst := cold.ValidationCurve[0].MSE
	if warmFirst >= coldFirst {
		t.Fatalf("warm start gave no head start: warm %.5f vs cold %.5f", warmFirst, coldFirst)
	}
}

func TestTrainOfflineContextCancel(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	if _, err := GenerateDataset(context.Background(), cfg, dir); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainOffline(ctx, cfg, dir, 5, 2); err == nil {
		t.Fatal("expected cancellation error")
	}
}
